(* Bench harness: regenerates every table/figure of the paper's evaluation
   (Figures 7-11) plus the Section 5 closed-form checks and the Theorem 6
   parallel sweep.  Each section prints the same series the paper plots.

   Usage:
     dune exec bench/main.exe                 -- all sections
     dune exec bench/main.exe -- fig7 fig11   -- selected sections
     dune exec bench/main.exe -- --csv fig8   -- also dump CSV
     dune exec bench/main.exe -- --quick      -- reduced sweeps (CI-sized)
     dune exec bench/main.exe -- -j 4 batch   -- batch driver on a 4-domain pool
     dune exec bench/main.exe -- bechamel     -- micro-benchmarks only

   Absolute numbers differ from the paper's (different machine, different
   eigensolver); the *shapes* are the reproduction target: who wins, how
   bounds grow against the published terms, where the min-cut baseline
   collapses, and how its runtime explodes. *)

open Graphio_graph
open Graphio_workloads
open Graphio_spectra
open Graphio_core

let csv_mode = ref false
let quick = ref false
let json_path = ref None
let njobs = ref 1

(* Sections may publish extra per-section fields into the --json record
   (the batch section records its speedup here); cleared between sections. *)
let extra_json : (string * Graphio_obs.Jsonx.t) list ref = ref []

let emit report =
  Report.print report;
  if !csv_mode then print_string (Report.to_csv report);
  print_newline ()

(* Monotonic clock: wall-clock adjustments (NTP slews, suspend) must not
   corrupt benchmark timings. *)
let time f = Graphio_obs.Clock.time f

let counter_of snapshot name =
  match Graphio_obs.Metrics.find snapshot name with
  | Some (Graphio_obs.Metrics.Counter v) -> v
  | _ -> 0

(* Matvec counts come from the process-wide [la.eigen.matvecs] counter;
   deltas around a run attribute them to it (single-threaded sections
   only — the counter is global). *)
let with_matvecs f =
  let before = counter_of (Graphio_obs.Metrics.snapshot ()) "la.eigen.matvecs" in
  let x, dt = time f in
  let after = counter_of (Graphio_obs.Metrics.snapshot ()) "la.eigen.matvecs" in
  (x, dt, after - before)

(* Eigensolve once per (graph, method), reuse across M values. *)
let spectral_bounds g ~ms =
  let eigenvalues, _ = Solver.spectrum g in
  let n = Dag.n_vertices g in
  List.map
    (fun m -> (Spectral_bound.compute ~n ~m ~eigenvalues ()).Spectral_bound.bound)
    ms

(* The expensive wavefront maximization is M-independent: do it once. *)
let mincut_bounds g ~ms =
  let best = Graphio_flow.Convex_mincut.max_wavefront g in
  List.map (fun m -> Graphio_flow.Convex_mincut.bound_of_wavefront best ~m) ms

let simulated g ~ms =
  List.map
    (fun m ->
      (Graphio_pebble.Simulator.best_upper_bound ~extra_orders:1 g ~m)
        .Graphio_pebble.Simulator.io)
    ms

let cells_of_floats = List.map Report.cell_float
let cells_of_ints = List.map Report.cell_int

(* ------------------------------------------------------------------ *)
(* Figure 7: FFT                                                       *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  let ms = [ 4; 8; 16 ] in
  let ls = if !quick then [ 3; 4; 5; 6; 7 ] else [ 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ] in
  let mincut_cutoff = if !quick then 5 else 7 in
  let r =
    Report.create ~title:"fig7-fft-bound-vs-l: I/O bound vs l for 2^l point FFT"
      ~columns:
        ([ "l"; "n" ]
        @ List.map (fun m -> Printf.sprintf "spectral M=%d" m) ms
        @ List.map (fun m -> Printf.sprintf "mincut M=%d" m) ms
        @ [ "simulated M=4" ])
  in
  let spectral_series = ref [] in
  List.iter
    (fun l ->
      let g = Fft.build l in
      let spectral = spectral_bounds g ~ms in
      spectral_series := (l, Dag.n_vertices g, spectral) :: !spectral_series;
      let mincut =
        if l <= mincut_cutoff then cells_of_ints (mincut_bounds g ~ms)
        else List.map (fun _ -> "-") ms
      in
      let sim = simulated g ~ms:[ 4 ] in
      Report.add_row r
        (cells_of_ints [ l; Dag.n_vertices g ]
        @ cells_of_floats spectral @ mincut @ cells_of_ints sim))
    ls;
  Report.note r
    (Printf.sprintf
       "min-cut cut off above l=%d (O(n^5) runtime; the paper used a 1-day cutoff)"
       mincut_cutoff);
  emit r;
  (* bottom panel: spectral bound vs l*2^l *)
  let r2 =
    Report.create
      ~title:"fig7-fft-bound-vs-l2l: spectral bound vs l*2^l (linearity check)"
      ~columns:([ "l"; "l*2^l" ] @ List.map (fun m -> Printf.sprintf "spectral M=%d" m) ms)
  in
  List.iter
    (fun (l, _, spectral) ->
      Report.add_row r2 (cells_of_ints [ l; l * (1 lsl l) ] @ cells_of_floats spectral))
    (List.rev !spectral_series);
  Report.note r2 "published bound is Omega(l*2^l / log M): columns should grow ~linearly";
  emit r2

(* ------------------------------------------------------------------ *)
(* Figure 8: naive matrix multiplication                               *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  let ms = [ 32; 64; 128 ] in
  let ns = if !quick then [ 4; 6; 8 ] else [ 4; 6; 8; 10; 12; 14; 16; 20 ] in
  let mincut_cutoff = if !quick then 6 else 8 in
  let r =
    Report.create ~title:"fig8-matmul-bound-vs-n: I/O bound vs n for n x n naive matmul"
      ~columns:
        ([ "n"; "vertices" ]
        @ List.map (fun m -> Printf.sprintf "spectral M=%d" m) ms
        @ List.map (fun m -> Printf.sprintf "mincut M=%d" m) ms)
  in
  let series = ref [] in
  List.iter
    (fun n ->
      let g = Matmul.build n in
      let spectral = spectral_bounds g ~ms in
      series := (n, spectral) :: !series;
      let mincut =
        if n <= mincut_cutoff then cells_of_ints (mincut_bounds g ~ms)
        else List.map (fun _ -> "-") ms
      in
      Report.add_row r
        (cells_of_ints [ n; Dag.n_vertices g ] @ cells_of_floats spectral @ mincut))
    ns;
  Report.note r "paper finding reproduced: convex min-cut is trivial (0) on naive matmul";
  emit r;
  let r2 =
    Report.create ~title:"fig8-matmul-bound-vs-n3: spectral bound vs n^3"
      ~columns:([ "n"; "n^3" ] @ List.map (fun m -> Printf.sprintf "spectral M=%d" m) ms)
  in
  List.iter
    (fun (n, spectral) ->
      Report.add_row r2 (cells_of_ints [ n; n * n * n ] @ cells_of_floats spectral))
    (List.rev !series);
  Report.note r2 "published bound is Omega(n^3/sqrt(M))";
  emit r2

(* ------------------------------------------------------------------ *)
(* Figure 9: Strassen                                                  *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  let ms = [ 8; 16 ] in
  let ns = if !quick then [ 2; 4; 8 ] else [ 2; 4; 8; 16 ] in
  let mincut_cutoff = 8 in
  let r =
    Report.create ~title:"fig9-strassen-bound-vs-n: I/O bound vs n for Strassen matmul"
      ~columns:
        ([ "n"; "vertices" ]
        @ List.map (fun m -> Printf.sprintf "spectral M=%d" m) ms
        @ List.map (fun m -> Printf.sprintf "mincut M=%d" m) ms)
  in
  let series = ref [] in
  List.iter
    (fun n ->
      let g = Strassen.build n in
      let spectral = spectral_bounds g ~ms in
      series := (n, spectral) :: !series;
      let mincut =
        if n <= mincut_cutoff then cells_of_ints (mincut_bounds g ~ms)
        else List.map (fun _ -> "-") ms
      in
      Report.add_row r
        (cells_of_ints [ n; Dag.n_vertices g ] @ cells_of_floats spectral @ mincut))
    ns;
  emit r;
  let r2 =
    Report.create ~title:"fig9-strassen-bound-vs-nlog27: spectral bound vs n^log2(7)"
      ~columns:
        ([ "n"; "n^log2(7)" ] @ List.map (fun m -> Printf.sprintf "spectral M=%d" m) ms)
  in
  List.iter
    (fun (n, spectral) ->
      let nl7 = Float.pow (float_of_int n) (log 7.0 /. log 2.0) in
      Report.add_row r2
        ([ Report.cell_int n; Report.cell_float nl7 ] @ cells_of_floats spectral))
    (List.rev !series);
  Report.note r2 "published bound is Omega((n/sqrt M)^log2(7) * M)";
  emit r2

(* ------------------------------------------------------------------ *)
(* Figure 10: Bellman-Held-Karp                                        *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  let ms = [ 16; 32; 64 ] in
  let ls = if !quick then [ 6; 7; 8; 9; 10 ] else [ 6; 7; 8; 9; 10; 11; 12; 13 ] in
  let mincut_cutoff = if !quick then 8 else 9 in
  let r =
    Report.create ~title:"fig10-bhk-bound-vs-l: I/O bound vs l for l-city TSP (BHK)"
      ~columns:
        ([ "l"; "n=2^l" ]
        @ List.map (fun m -> Printf.sprintf "spectral M=%d" m) ms
        @ List.map (fun m -> Printf.sprintf "mincut M=%d" m) ms)
  in
  let series = ref [] in
  List.iter
    (fun l ->
      let g = Bhk.build l in
      let spectral = spectral_bounds g ~ms in
      series := (l, spectral) :: !series;
      let mincut =
        if l <= mincut_cutoff then cells_of_ints (mincut_bounds g ~ms)
        else List.map (fun _ -> "-") ms
      in
      Report.add_row r (cells_of_ints [ l; 1 lsl l ] @ cells_of_floats spectral @ mincut))
    ls;
  emit r;
  let r2 =
    Report.create ~title:"fig10-bhk-bound-vs-2l-over-l: spectral bound vs 2^l/l"
      ~columns:([ "l"; "2^l/l" ] @ List.map (fun m -> Printf.sprintf "spectral M=%d" m) ms)
  in
  List.iter
    (fun (l, spectral) ->
      Report.add_row r2
        ([ Report.cell_int l;
           Report.cell_float (float_of_int (1 lsl l) /. float_of_int l) ]
        @ cells_of_floats spectral))
    (List.rev !series);
  Report.note r2 "section 5.1 derives Omega(2^l/l - 2Ml) for this graph";
  emit r2

(* ------------------------------------------------------------------ *)
(* Figure 11: runtime comparison                                       *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  let ls = if !quick then [ 6; 7; 8 ] else [ 6; 7; 8; 9; 10; 11 ] in
  let m = 16 in
  let r =
    Report.create ~title:"fig11-runtime: seconds to compute the bound for l-city BHK"
      ~columns:[ "l"; "n=2^l"; "spectral (s)"; "convex min-cut (s)" ]
  in
  List.iter
    (fun l ->
      let g = Bhk.build l in
      let _, spectral_t = time (fun () -> Solver.bound g ~m) in
      let mincut_cell =
        if l <= (if !quick then 8 else 10) then begin
          let _, t = time (fun () -> Graphio_flow.Convex_mincut.bound g ~m) in
          Report.cell_float t
        end
        else "-"
      in
      Report.add_row r
        [ Report.cell_int l; Report.cell_int (1 lsl l); Report.cell_float spectral_t;
          mincut_cell ])
    ls;
  Report.note r
    "the paper: 8.5 hours (min-cut) vs 98 s (spectral) at l=15; same explosion shape";
  emit r

(* ------------------------------------------------------------------ *)
(* Section 5.1: hypercube closed forms                                 *)
(* ------------------------------------------------------------------ *)

let sec51 () =
  let m = 16 in
  let r =
    Report.create
      ~title:(Printf.sprintf "sec51-hypercube-analytic: closed forms, M = %d" m)
      ~columns:
        [ "l"; "alpha1 formula"; "alpha-optimized"; "exact-spectrum Thm5"; "numeric Thm4" ]
  in
  let ls = if !quick then [ 8; 10; 12 ] else [ 8; 10; 12; 14; 16; 18; 20 ] in
  List.iter
    (fun l ->
      let alpha1 = Analytic.hypercube_alpha1 ~l ~m in
      let best, _ = Analytic.hypercube_best ~l ~m in
      let exact =
        (* all-k search: the hypercube analytics pick k = sums of
           binomials far beyond the paper's h = 100 cap *)
        (Solver.bound_of_spectrum_all_k
           ~spectrum:(Hypercube_spectra.spectrum l)
           ~scale:(1.0 /. float_of_int l)
           ~n:(1 lsl l) ~m ())
          .Spectral_bound.bound
      in
      let numeric =
        if l <= 12 then
          Report.cell_float
            (Solver.bound (Bhk.build l) ~m).Solver.result.Spectral_bound.bound
        else "-"
      in
      Report.add_row r
        [ Report.cell_int l; Report.cell_float alpha1; Report.cell_float best;
          Report.cell_float exact; numeric ])
    ls;
  Report.note r
    "exact-spectrum searches all k over the full hypercube spectrum; analytic zeroes the tail";
  emit r

(* ------------------------------------------------------------------ *)
(* Section 5.2: FFT closed forms and the Hong-Kung gap                 *)
(* ------------------------------------------------------------------ *)

let sec52 () =
  let m = 16 in
  let r =
    Report.create
      ~title:(Printf.sprintf "sec52-fft-analytic: closed forms, M = %d" m)
      ~columns:
        [ "l"; "analytic 5.2"; "exact-spectrum Thm5"; "hong-kung l*2^l/log2M"; "ratio" ]
  in
  let ls = if !quick then [ 10; 14; 18 ] else [ 10; 12; 14; 16; 18; 20; 24; 28; 32 ] in
  List.iter
    (fun l ->
      let analytic = Float.max 0.0 (fst (Analytic.fft_best ~l ~m)) in
      let exact =
        (Solver.bound_of_spectrum_all_k
           ~spectrum:(Butterfly_spectra.spectrum l)
           ~scale:0.5
           ~n:(Butterfly_spectra.n_vertices l)
           ~m ())
          .Spectral_bound.bound
      in
      let hk = Analytic.fft_hong_kung ~l ~m in
      Report.add_row r
        [ Report.cell_int l; Report.cell_float analytic; Report.cell_float exact;
          Report.cell_float hk; Report.cell_float (exact /. hk) ])
    ls;
  Report.note r
    "the ratio column approaches ~1/log2(M) scale as l grows (paper: 1/log M factor)";
  emit r

(* ------------------------------------------------------------------ *)
(* Section 5.3: Erdos-Renyi                                            *)
(* ------------------------------------------------------------------ *)

let sec53 () =
  let m = 4 in
  let p0 = 8.0 in
  let r =
    Report.create
      ~title:
        (Printf.sprintf "sec53-er-random: sparse regime p=%.0f*log n/(n-1), M=%d" p0 m)
      ~columns:[ "n"; "lambda2"; "dmax"; "measured k=2 bound"; "formula 5.3" ]
  in
  let ns = if !quick then [ 100; 200 ] else [ 100; 200; 400; 800 ] in
  let k2_bound g lambda2 =
    let n = Dag.n_vertices g in
    let dmax = Dag.max_out_degree g in
    Float.max 0.0
      ((float_of_int (n / 2) *. lambda2 /. float_of_int dmax)
      -. (4.0 *. float_of_int m))
  in
  List.iter
    (fun n ->
      let p = Er.connectivity_regime_p ~n ~p0 in
      let g = Er.gnp_connected ~n ~p ~seed:(n * 13) ~max_attempts:100 in
      let lap = Laplacian.standard g in
      let lambda2 =
        Float.max 0.0 (Graphio_la.Eigen.smallest ~h:2 lap).Graphio_la.Eigen.values.(1)
      in
      Report.add_row r
        [ Report.cell_int n; Report.cell_float lambda2;
          Report.cell_int (Dag.max_out_degree g);
          Report.cell_float (k2_bound g lambda2);
          Report.cell_float (Analytic.er_sparse ~n ~p0 ~m) ])
    ns;
  emit r;
  let r2 =
    Report.create
      ~title:(Printf.sprintf "sec53-er-random: dense regime p=0.5, M=%d" m)
      ~columns:[ "n"; "lambda2"; "measured k=2 bound"; "n/2 - 4M" ]
  in
  List.iter
    (fun n ->
      let g = Er.gnp_connected ~n ~p:0.5 ~seed:(n * 29) ~max_attempts:20 in
      let lap = Laplacian.standard g in
      let lambda2 =
        Float.max 0.0 (Graphio_la.Eigen.smallest ~h:2 lap).Graphio_la.Eigen.values.(1)
      in
      Report.add_row r2
        [ Report.cell_int n; Report.cell_float lambda2;
          Report.cell_float (k2_bound g lambda2);
          Report.cell_float (Analytic.er_dense ~n ~m) ])
    ns;
  Report.note r2 "measured k=2 bound approaches the n/2 - 4M asymptote from below";
  emit r2

(* ------------------------------------------------------------------ *)
(* Theorem 6: parallel bounds                                          *)
(* ------------------------------------------------------------------ *)

let thm6 () =
  let r =
    Report.create ~title:"thm6-parallel: per-processor bound vs p"
      ~columns:[ "graph"; "p=1"; "p=2"; "p=4"; "p=8"; "p=16" ]
  in
  let ps = [ 1; 2; 4; 8; 16 ] in
  let row name n eigenvalues =
    let bounds =
      List.map
        (fun p ->
          (Spectral_bound.compute ~n ~m:8 ~p ~eigenvalues ()).Spectral_bound.bound)
        ps
    in
    Report.add_row r (name :: List.map Report.cell_float bounds)
  in
  let fft_l = if !quick then 8 else 9 in
  let g = Fft.build fft_l in
  let eigs, _ = Solver.spectrum g in
  row (Printf.sprintf "fft l=%d (numeric)" fft_l) (Dag.n_vertices g) eigs;
  let l = 16 in
  let closed =
    Multiset.smallest (Butterfly_spectra.spectrum l) ~h:100
    |> Array.map (fun x -> x /. 2.0)
  in
  row "fft l=16 (closed form, Thm5)" (Butterfly_spectra.n_vertices l) closed;
  let bg = Bhk.build 10 in
  let eigs_b, _ = Solver.spectrum bg in
  row "bhk l=10 (numeric)" (Dag.n_vertices bg) eigs_b;
  (* empirical side: a simulated parallel execution's busiest processor *)
  let sim_row name g m =
    let order = Topo.natural g in
    let cells =
      List.map
        (fun p ->
          let assignment = Graphio_pebble.Parallel_sim.block_assignment g ~order ~p in
          let r = Graphio_pebble.Parallel_sim.simulate g ~assignment ~order ~p ~m in
          Report.cell_int r.Graphio_pebble.Parallel_sim.max_io)
        ps
    in
    Report.add_row r (name :: cells)
  in
  sim_row "fft l=9 simulated max-proc I/O" (Fft.build fft_l) 8;
  sim_row "bhk l=10 simulated max-proc I/O" bg 16;
  Report.note r "Theorem 6: at least one of p processors incurs this much I/O";
  Report.note r
    "simulated rows: block-partitioned parallel executions; each upper-bounds its bound row";
  emit r

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md)                  *)
(* ------------------------------------------------------------------ *)

let ablations () =
  (* 1. h (number of eigenvalues) vs bound strength: section 6.5's claim
     that modest h loses nothing. *)
  let g = Fft.build (if !quick then 7 else 9) in
  let n = Dag.n_vertices g in
  let eigenvalues, _ = Solver.spectrum ~h:256 g in
  let r =
    Report.create
      ~title:"ablation-h: bound strength vs number of eigenvalues h (FFT, M=4)"
      ~columns:[ "h"; "bound"; "best k" ]
  in
  List.iter
    (fun h ->
      let eigs = Array.sub eigenvalues 0 (min h (Array.length eigenvalues)) in
      let b = Spectral_bound.compute ~n ~m:4 ~eigenvalues:eigs () in
      Report.add_row r
        [ Report.cell_int h; Report.cell_float b.Spectral_bound.bound;
          Report.cell_int b.Spectral_bound.best_k ])
    [ 4; 8; 16; 32; 64; 100; 128; 256 ];
  Report.note r "the paper sets h=100; beyond the best k, extra eigenvalues change nothing";
  emit r;
  (* 2. Theorem 4 vs Theorem 5 tightness across workloads. *)
  let r2 =
    Report.create
      ~title:"ablation-method: Theorem 4 (normalized) vs Theorem 5 (standard)"
      ~columns:[ "graph"; "M"; "thm4"; "thm5" ]
  in
  List.iter
    (fun (name, g, m) ->
      let b4 = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let b5 =
        (Solver.bound ~method_:Solver.Standard g ~m).Solver.result.Spectral_bound.bound
      in
      Report.add_row r2
        [ name; Report.cell_int m; Report.cell_float b4; Report.cell_float b5 ])
    [
      ("fft l=8", Fft.build 8, 4);
      ("bhk l=10", Bhk.build 10, 16);
      ("matmul n=8", Matmul.build 8, 32);
      ("strassen n=8", Strassen.build 8, 8);
    ];
  Report.note r2 "Thm 5 trades tightness for closed-form convenience; never tighter than Thm 4";
  emit r2;
  (* 3. graph-shape ablation: n-ary vs binary dot-product sums. *)
  let r3 =
    Report.create ~title:"ablation-sum-shape: matmul with n-ary vs binary sums (M=16)"
      ~columns:[ "n"; "n-ary bound"; "binary bound" ]
  in
  List.iter
    (fun n ->
      let a = (Solver.bound (Matmul.build n) ~m:16).Solver.result.Spectral_bound.bound in
      let b =
        (Solver.bound (Matmul.build_binary_sums n) ~m:16).Solver.result.Spectral_bound.bound
      in
      Report.add_row r3 [ Report.cell_int n; Report.cell_float a; Report.cell_float b ])
    [ 10; 12; 14; 16 ];
  emit r3

(* ------------------------------------------------------------------ *)
(* Relaxation gap: Theorem 4 (orthogonal relaxation) vs Theorem 2      *)
(* evaluated on concrete schedules                                     *)
(* ------------------------------------------------------------------ *)

let relaxation () =
  let r =
    Report.create
      ~title:"relaxation: spectral bound vs exact partition bound on real schedules"
      ~columns:
        [ "graph"; "M"; "spectral (Thm 4)"; "partition best-X"; "partition worst-X";
          "simulated" ]
  in
  List.iter
    (fun (name, g, m) ->
      let spectral = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let orders =
        [ Topo.natural g; Topo.kahn g; Topo.dfs g; Topo.random ~seed:11 g ]
      in
      let values =
        List.map (fun order -> snd (Partition_bound.best g ~order ~m)) orders
      in
      let best = List.fold_left Float.max neg_infinity values in
      let worst = List.fold_left Float.min infinity values in
      let sim =
        (Graphio_pebble.Simulator.best_upper_bound ~extra_orders:1 g ~m)
          .Graphio_pebble.Simulator.io
      in
      Report.add_row r
        [ name; Report.cell_int m;
          Report.cell_float spectral;
          Report.cell_float (Float.max 0.0 worst);
          Report.cell_float (Float.max 0.0 best);
          Report.cell_int sim ])
    [
      ("fft l=7", Fft.build 7, 4);
      ("fft l=8", Fft.build 8, 4);
      ("bhk l=9", Bhk.build 9, 16);
      ("matmul n=6", Matmul.build 6, 32);
      ("strassen n=4", Strassen.build 4, 8);
    ];
  Report.note r
    "spectral <= partition value for every schedule and k (the relaxation direction)";
  Report.note r
    "columns 4-5 show min/max over {natural, kahn, dfs, random} schedules";
  emit r

(* ------------------------------------------------------------------ *)
(* Workload gallery: the extended families                             *)
(* ------------------------------------------------------------------ *)

let gallery () =
  let r =
    Report.create
      ~title:"gallery: spectral bound vs simulated I/O across graph shapes (M=8)"
      ~columns:
        [ "graph"; "n"; "edges"; "depth"; "spectral"; "simulated"; "fiedler"; "searched" ]
  in
  let m = 8 in
  List.iter
    (fun (name, g) ->
      let m = max m (Graphio_pebble.Simulator.min_feasible_m g) in
      let spectral = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let sim =
        (Graphio_pebble.Simulator.best_upper_bound ~extra_orders:1 g ~m)
          .Graphio_pebble.Simulator.io
      in
      let searched =
        (Graphio_pebble.Schedule_search.optimize ~budget:80 g ~m)
          .Graphio_pebble.Schedule_search.result
          .Graphio_pebble.Simulator.io
      in
      let fiedler =
        (Graphio_pebble.Spectral_order.upper_bound g ~m).Graphio_pebble.Simulator.io
      in
      Report.add_row r
        [ name; Report.cell_int (Dag.n_vertices g); Report.cell_int (Dag.n_edges g);
          Report.cell_int (Stats.compute g).Stats.depth; Report.cell_float spectral;
          Report.cell_int sim; Report.cell_int fiedler; Report.cell_int searched ])
    [
      ("fft l=8 (butterfly)", Fft.build 8);
      ("bitonic l=5", Bitonic.build 5);
      ("bhk l=9 (hypercube)", Bhk.build 9);
      ("matmul n=6", Matmul.build 6);
      ("strassen n=4", Strassen.build 4);
      ("stencil 64x16", Stencil.build ~width:64 ~steps:16 ());
      ("pyramid 48", Stencil.pyramid 48);
      ("reduction 512", Reduction.build 512);
      ("prefix-sum 512", Sequences.prefix_sum 512);
      ("horner d=100", Sequences.horner 100);
      ("er n=500 p=0.02", Er.gnp ~n:500 ~p:0.02 ~seed:3);
    ];
  Report.note r "sequential shapes (reduction/scan/horner) rightly bound to ~0";
  Report.note r
    "'fiedler' = schedule ordered by the Fiedler vector of the same Laplacian the bound uses";
  Report.note r "'searched' = hill-climbed schedule (upper bounds only tighten)";
  emit r;
  (* Figures 1-6 as DOT files. *)
  let outdir = "bench_figures" in
  (try Unix.mkdir outdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let export name ?order ?partition g =
    Dot.to_file ?order ?partition (Filename.concat outdir (name ^ ".dot")) g
  in
  export "figure1-inner-product" (Inner_product.build 2);
  let fig2, fig2_partition = Inner_product.figure2 () in
  export "figure2-partition" ~order:(Topo.natural fig2) ~partition:fig2_partition fig2;
  export "figure4-bhk-3cities" (Bhk.build 3);
  export "figure5-fft-4pt" (Fft.build 2);
  export "figure6a-fft-8pt" (Fft.build 3);
  export "figure6b-matmul-2x2" (Matmul.build 2);
  export "figure6c-strassen-2x2" (Strassen.build 2);
  export "figure6d-bhk-5cities" (Bhk.build 5);
  Printf.printf "wrote Figure 1-6 DOT files to %s/\n\n" outdir

(* ------------------------------------------------------------------ *)
(* Sandwich validation                                                 *)
(* ------------------------------------------------------------------ *)

let sandwich () =
  let r =
    Report.create ~title:"sandwich: every lower bound below a simulated schedule's I/O"
      ~columns:[ "graph"; "M"; "spectral"; "mincut"; "simulated"; "ok" ]
  in
  List.iter
    (fun (name, g, m) ->
      let s = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let c = Graphio_flow.Convex_mincut.bound g ~m in
      let u =
        (Graphio_pebble.Simulator.best_upper_bound g ~m).Graphio_pebble.Simulator.io
      in
      let ok = s <= float_of_int u +. 1e-6 && c <= u in
      Report.add_row r
        [ name; Report.cell_int m; Report.cell_float s; Report.cell_int c;
          Report.cell_int u; string_of_bool ok ])
    [
      ("fft l=8", Fft.build 8, 4);
      ("fft l=8", Fft.build 8, 16);
      ("bhk l=9", Bhk.build 9, 16);
      ("matmul n=6", Matmul.build 6, 32);
      ("strassen n=4", Strassen.build 4, 8);
    ];
  emit r

(* ------------------------------------------------------------------ *)
(* Tightness at small sizes: lower bounds vs the true optimum          *)
(* ------------------------------------------------------------------ *)

let tightness () =
  let r =
    Report.create
      ~title:"tightness: lower bounds vs the exact optimum J* (tiny graphs)"
      ~columns:
        [ "graph"; "n"; "M"; "spectral"; "mincut"; "partition"; "J* (exact)";
          "simulated" ]
  in
  let cases =
    [
      ("fft l=2", Fft.build 2, 3);
      ("inner d=4", Inner_product.build 4, 3);
      ("pyramid 5", Stencil.pyramid 5, 3);
      ("bhk l=4", Bhk.build 4, 5);
      ("matmul n=2", Matmul.build 2, 4);
      ("er n=14", Er.gnp ~n:14 ~p:0.35 ~seed:4, 5);
      ("er n=16", Er.gnp ~n:16 ~p:0.3 ~seed:9, 4);
    ]
  in
  List.iter
    (fun (name, g, m) ->
      let m = max m (Graphio_pebble.Simulator.min_feasible_m g) in
      let spectral = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let mincut = Graphio_flow.Convex_mincut.bound g ~m in
      let partition =
        List.fold_left
          (fun acc order -> Float.max acc (snd (Partition_bound.best g ~order ~m)))
          0.0
          [ Topo.natural g; Topo.kahn g; Topo.dfs g ]
      in
      let exact =
        match Graphio_pebble.Exact.optimal_io g ~m with
        | io -> Report.cell_int io
        | exception Graphio_pebble.Exact.Too_large _ -> "-"
      in
      let sim =
        (Graphio_pebble.Simulator.best_upper_bound g ~m).Graphio_pebble.Simulator.io
      in
      Report.add_row r
        [ name; Report.cell_int (Dag.n_vertices g); Report.cell_int m;
          Report.cell_float spectral; Report.cell_int mincut;
          Report.cell_float (Float.max 0.0 partition); exact;
          Report.cell_int sim ])
    cases;
  Report.note r
    "J* computed by exhaustive state search — the paper's figures never had the true optimum";
  Report.note r
    "partition column is max over {natural,kahn,dfs}: a bound on those schedules, not on J*";
  emit r

(* ------------------------------------------------------------------ *)
(* Batch bound driver: Solver.bound_batch sequential vs domain pool    *)
(* ------------------------------------------------------------------ *)

let batch () =
  let ms = [ 8; 16 ] in
  let ls_fft = if !quick then [ 5; 6; 7 ] else [ 6; 7; 8; 9 ] in
  let ls_bhk = if !quick then [ 6; 7; 8 ] else [ 7; 8; 9; 10 ] in
  let jobs_of build ls =
    List.concat_map
      (fun l ->
        let g = build l in
        List.concat_map
          (fun m ->
            [ Solver.job g ~m; Solver.job ~method_:Solver.Standard g ~m ])
          ms)
      ls
  in
  let jobs = Array.of_list (jobs_of Fft.build ls_fft @ jobs_of Bhk.build ls_bhk) in
  (* the closed-form tier would answer every FFT/BHK job without a single
     matvec (and the recorded matvec counts would all be 0): force the
     numeric tier so the sweep actually measures the eigensolver and its
     parallel scaling *)
  let run pool =
    Solver.bound_batch ?pool ~dense_threshold:100 ~closed_form:false jobs
  in
  let _, seq_s, seq_matvecs = with_matvecs (fun () -> run None) in
  let j = max 1 !njobs in
  let results, par_s, par_matvecs =
    with_matvecs (fun () ->
        if j = 1 then run None
        else
          Graphio_par.Pool.with_pool ~size:j (fun pool -> run (Some pool)))
  in
  let hits = Array.fold_left (fun a r -> if r.Solver.cache_hit then a + 1 else a) 0 results in
  let ncores = Domain.recommended_domain_count () in
  let speedup = seq_s /. par_s in
  let r =
    Report.create
      ~title:
        (Printf.sprintf
           "batch: bound_batch FFT/BHK sweep, sequential vs %d-domain pool (%d cores)"
           j ncores)
      ~columns:[ "quantity"; "value" ]
  in
  Report.add_row r [ "jobs"; Report.cell_int (Array.length jobs) ];
  Report.add_row r [ "spectrum cache hits"; Report.cell_int hits ];
  Report.add_row r [ "sequential (s)"; Report.cell_float seq_s ];
  Report.add_row r [ Printf.sprintf "pool j=%d (s)" j; Report.cell_float par_s ];
  Report.add_row r [ "speedup"; Report.cell_float speedup ];
  Report.add_row r [ "matvecs (sequential)"; Report.cell_int seq_matvecs ];
  Report.add_row r [ Printf.sprintf "matvecs (pool j=%d)" j; Report.cell_int par_matvecs ];
  Report.note r
    "same bounds either way (bitwise-deterministic parallel matvec); speedup tracks physical cores";
  Report.note r
    "equal matvec counts: the pool changes who runs the matvec, never how many run";
  emit r;
  extra_json :=
    [
      ("jobs", Graphio_obs.Jsonx.Int (Array.length jobs));
      ("j", Graphio_obs.Jsonx.Int j);
      ("ncores", Graphio_obs.Jsonx.Int ncores);
      ("seq_s", Graphio_obs.Jsonx.Float seq_s);
      ("par_s", Graphio_obs.Jsonx.Float par_s);
      ("speedup", Graphio_obs.Jsonx.Float speedup);
      ("seq_matvecs", Graphio_obs.Jsonx.Int seq_matvecs);
      ("par_matvecs", Graphio_obs.Jsonx.Int par_matvecs);
    ]

(* ------------------------------------------------------------------ *)
(* Serve: cold vs warm request latency through the bound service       *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let serve () =
  let open Graphio_server in
  let tmp base suffix =
    let p = Filename.temp_file base suffix in
    Sys.remove p;
    p
  in
  let sock = tmp "graphio_bench_serve" ".sock" in
  let dir = tmp "graphio_bench_spectra" "" in
  Unix.mkdir dir 0o700;
  let transport = Server.Unix_socket sock in
  let cfg =
    {
      (Server.default_config transport) with
      Server.pool_size = max 1 !njobs;
      cache = Graphio_cache.Spectrum.create ~dir ();
    }
  in
  let listening = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~ready:(fun () -> Atomic.set listening true) cfg)
  in
  while not (Atomic.get listening) do
    Unix.sleepf 0.001
  done;
  (* both Laplacians per graph: every query in a pass is a distinct
     spectrum, so the cold pass pays one eigensolve per query and the
     warm pass pays none *)
  let queries =
    let specs =
      if !quick then [ ("fft:6", 8); ("fft:7", 8); ("bhk:7", 16); ("bhk:8", 16) ]
      else
        [ ("fft:8", 8); ("fft:9", 8); ("bhk:9", 16); ("bhk:10", 16);
          ("matmul:6", 32) ]
    in
    List.concat_map
      (fun (spec, m) ->
        [ Printf.sprintf {|{"spec":%S,"m":%d}|} spec m;
          Printf.sprintf {|{"spec":%S,"m":%d,"method":"standard"}|} spec m ])
      specs
  in
  let pass () =
    let c = Client.connect transport in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        List.map
          (fun q ->
            let reply, dt = time (fun () -> Client.rpc c q) in
            let hit =
              match
                Graphio_obs.Jsonx.(member "cache_hit" (of_string reply))
              with
              | Some (Graphio_obs.Jsonx.Bool b) -> b
              | _ -> false
            in
            (hit, dt))
          queries)
  in
  let cold = pass () in
  let warm = pass () in
  (* one {"op":"metrics"} before shutdown: the server-side latency
     quantiles and GC gauges of the passes above land in the bench
     record, so BENCH_*.json tracks tail latency across versions *)
  let latency, gc_stats =
    let c = Client.connect transport in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let json = Graphio_obs.Jsonx.of_string (Client.rpc c {|{"op":"metrics"}|}) in
        let lat name =
          match Graphio_obs.Jsonx.member "latency" json with
          | Some l -> (
              match Graphio_obs.Jsonx.member name l with
              | Some (Graphio_obs.Jsonx.Float f) -> f
              | Some (Graphio_obs.Jsonx.Int i) -> float_of_int i
              | _ -> 0.0)
          | None -> 0.0
        in
        let snap =
          match Graphio_obs.Jsonx.member "metrics" json with
          | Some m -> Graphio_obs.Metrics.of_json m
          | None -> []
        in
        let g name =
          match Graphio_obs.Metrics.find snap name with
          | Some (Graphio_obs.Metrics.Gauge v) -> v
          | _ -> 0.0
        in
        ( (lat "p50_s", lat "p95_s", lat "p99_s"),
          ( g "runtime.gc.heap_words",
            g "runtime.gc.minor_collections",
            g "runtime.gc.major_collections" ) ))
  in
  (let c = Client.connect transport in
   ignore (Client.rpc c {|{"op":"shutdown"}|});
   Client.close c);
  Domain.join server;
  if Sys.file_exists sock then Sys.remove sock;
  rm_rf dir;
  let total l = List.fold_left (fun a (_, dt) -> a +. dt) 0.0 l in
  let hits l = List.length (List.filter fst l) in
  let nq = List.length queries in
  let cold_s = total cold and warm_s = total warm in
  let speedup = cold_s /. warm_s in
  let r =
    Report.create
      ~title:
        (Printf.sprintf
           "serve: cold vs warm latency through the bound service (%d queries, pool j=%d)"
           nq (max 1 !njobs))
      ~columns:[ "quantity"; "value" ]
  in
  Report.add_row r [ "queries"; Report.cell_int nq ];
  Report.add_row r [ "cold pass (s)"; Report.cell_float cold_s ];
  Report.add_row r [ "warm pass (s)"; Report.cell_float warm_s ];
  Report.add_row r [ "warm cache hits"; Report.cell_int (hits warm) ];
  Report.add_row r [ "speedup (cold/warm)"; Report.cell_float speedup ];
  let p50, p95, p99 = latency in
  let heap_words, minor_gcs, major_gcs = gc_stats in
  Report.add_row r [ "request p50 (s)"; Report.cell_float p50 ];
  Report.add_row r [ "request p95 (s)"; Report.cell_float p95 ];
  Report.add_row r [ "request p99 (s)"; Report.cell_float p99 ];
  Report.add_row r [ "gc major collections"; Report.cell_int (int_of_float major_gcs) ];
  Report.note r
    "warm answers come from the two-tier spectrum cache; the residue is protocol + socket cost";
  emit r;
  extra_json :=
    [
      ("queries", Graphio_obs.Jsonx.Int nq);
      ("cold_s", Graphio_obs.Jsonx.Float cold_s);
      ("warm_s", Graphio_obs.Jsonx.Float warm_s);
      ("warm_hits", Graphio_obs.Jsonx.Int (hits warm));
      ("speedup", Graphio_obs.Jsonx.Float speedup);
      ("p50_s", Graphio_obs.Jsonx.Float p50);
      ("p95_s", Graphio_obs.Jsonx.Float p95);
      ("p99_s", Graphio_obs.Jsonx.Float p99);
      ("gc_heap_words", Graphio_obs.Jsonx.Float heap_words);
      ("gc_minor_collections", Graphio_obs.Jsonx.Float minor_gcs);
      ("gc_major_collections", Graphio_obs.Jsonx.Float major_gcs);
    ]

(* ------------------------------------------------------------------ *)
(* Recognizer: closed-form spectrum dispatch vs forced numeric solve   *)
(* ------------------------------------------------------------------ *)

let recognize () =
  let cases =
    if !quick then
      [
        ("butterfly fft:7", Fft.build 7);
        ("hypercube bhk:8", Bhk.build 8);
        ("path path:256", Sequences.independent_chains ~count:1 ~length:256);
        ("grid grid:12:12", Stencil.grid ~rows:12 ~cols:12);
      ]
    else
      [
        ("butterfly fft:8", Fft.build 8);
        ("hypercube bhk:10", Bhk.build 10);
        ("path path:1024", Sequences.independent_chains ~count:1 ~length:1024);
        ("grid grid:24:24", Stencil.grid ~rows:24 ~cols:24);
      ]
  in
  let m = 8 in
  let r =
    Report.create
      ~title:"recognize: closed-form spectrum dispatch vs numeric eigensolve (Thm 5)"
      ~columns:[ "graph"; "n"; "tier"; "closed (s)"; "numeric (s)"; "speedup"; "agree" ]
  in
  let fields = ref [] in
  List.iter
    (fun (name, g) ->
      let closed_o, closed_s =
        time (fun () -> Solver.bound ~method_:Solver.Standard g ~m)
      in
      let numeric_o, numeric_s =
        time (fun () ->
            Solver.bound ~method_:Solver.Standard ~closed_form:false g ~m)
      in
      let cb = closed_o.Solver.result.Spectral_bound.bound
      and nb = numeric_o.Solver.result.Spectral_bound.bound in
      let agree = Float.abs (cb -. nb) <= 1e-6 *. (1.0 +. Float.abs nb) in
      let slug = String.map (fun c -> if c = ' ' then '_' else c) name in
      fields :=
        (slug ^ "_speedup", Graphio_obs.Jsonx.Float (numeric_s /. closed_s))
        :: (slug ^ "_closed_s", Graphio_obs.Jsonx.Float closed_s)
        :: (slug ^ "_numeric_s", Graphio_obs.Jsonx.Float numeric_s)
        :: !fields;
      Report.add_row r
        [ name; Report.cell_int (Dag.n_vertices g);
          Solver.tier_name closed_o.Solver.tier; Report.cell_float closed_s;
          Report.cell_float numeric_s;
          Report.cell_float (numeric_s /. closed_s); string_of_bool agree ])
    cases;
  Report.note r
    "closed rows pay recognition (linear) instead of an eigensolve (cubic dense)";
  Report.note r "'agree' checks the dispatched bound against the numeric bound";
  emit r;
  extra_json := List.rev !fields

(* ------------------------------------------------------------------ *)
(* Eigensolver hot path: CSR kernel, adaptive degree, warm starts      *)
(* ------------------------------------------------------------------ *)

(* Three workload families through the sparse eigensolver, four sub-runs
   each:
     1. old kernel (float arrays), fixed degree 20   - the reference
     2. new kernel (Bigarray CSR),  fixed degree 20  - must be bitwise
        identical to 1 at identical matvec count; only wall time may move
     3. new kernel, auto degree, cold                - fewer matvecs at
        equal bound accuracy
     4. new kernel, auto degree, warm-started from a donor solve at a
        smaller h (the cross-h Ritz reuse the cache tier performs)
   The per-family matvec counts are deterministic (fixed seed, bitwise
   matvec) — scripts/check_eigen_baseline.sh pins the quick-mode counts
   against bench/eigen_baseline.json in CI. *)

let perturbed_grid ~rows ~cols =
  let b = Dag.Builder.create ~capacity_hint:(rows * cols) () in
  for _ = 1 to rows * cols do
    ignore (Dag.Builder.add_vertex b)
  done;
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = (i * cols) + j in
      if i > 0 then Dag.Builder.add_edge b (v - cols) v;
      if j > 0 then Dag.Builder.add_edge b (v - 1) v;
      (* every 7th cell gains a diagonal shortcut: still a DAG (edges only
         increase the row-major index), no longer a recognizable grid *)
      if i < rows - 1 && j < cols - 1 && v mod 7 = 0 then
        Dag.Builder.add_edge b v (v + cols + 1)
    done
  done;
  Dag.Builder.build b

let eigen () =
  let open Graphio_la in
  let families =
    if !quick then
      [ ("bhk", Bhk.build 8);
        ("grid_perturbed", perturbed_grid ~rows:16 ~cols:16);
        ("random_dag", Er.gnp ~n:300 ~p:0.03 ~seed:7) ]
    else
      [ ("bhk", Bhk.build 9);
        ("grid_perturbed", perturbed_grid ~rows:24 ~cols:24);
        ("random_dag", Er.gnp ~n:600 ~p:0.02 ~seed:7) ]
  in
  let h = if !quick then 32 else 64 in
  let h_donor = if !quick then 24 else 48 in
  let solve ?kernel ?init ?(want_vectors = false) ~degree ~h lap =
    (* dense_threshold 0: always the sparse path — that is the hot path
       under measurement *)
    Eigen.smallest ~h ~dense_threshold:0 ~filter_degree:degree ?kernel ?init
      ~want_vectors lap
  in
  let matvecs s =
    match s.Eigen.stats with Some st -> st.Eigen.matvecs | None -> 0
  in
  let bitwise_equal a b =
    Array.length a = Array.length b
    && begin
         let ok = ref true in
         Array.iteri
           (fun i x ->
             if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
               ok := false)
           a;
         !ok
       end
  in
  let r =
    Report.create
      ~title:
        (Printf.sprintf
           "eigen: matvec kernel / adaptive degree / warm start (sparse path, h=%d)"
           h)
      ~columns:
        [ "family"; "n"; "old (s)"; "new (s)"; "bitwise"; "fixed mv";
          "auto mv"; "warm mv"; "auto red"; "warm red"; "accurate" ]
  in
  let fields = ref [] in
  List.iter
    (fun (name, g) ->
      let lap = Laplacian.standard g in
      let n = Dag.n_vertices g in
      let old_s, old_t =
        time (fun () ->
            solve ~kernel:Csr.Arrays ~degree:(Filtered.Fixed 20) ~h lap)
      in
      let new_s, new_t =
        time (fun () ->
            solve ~kernel:Csr.Bigarray_blocked ~degree:(Filtered.Fixed 20) ~h
              lap)
      in
      let bitwise =
        bitwise_equal old_s.Eigen.values new_s.Eigen.values
        && matvecs old_s = matvecs new_s
      in
      let auto_s = solve ~degree:Filtered.Auto ~h lap in
      (* the warm run replays what the cache tier does on a cross-h hit:
         a donor solve at a smaller h leaves its locked Ritz vectors, the
         full-h solve starts from them instead of random vectors *)
      let donor = solve ~degree:Filtered.Auto ~want_vectors:true ~h:h_donor lap in
      let warm_s =
        solve ~degree:Filtered.Auto ?init:donor.Eigen.vectors ~h lap
      in
      let fixed_mv = matvecs new_s
      and auto_mv = matvecs auto_s
      and warm_mv = matvecs warm_s in
      let reduction v =
        if fixed_mv = 0 then 0.0
        else 1.0 -. (float_of_int v /. float_of_int fixed_mv)
      in
      (* equal-accuracy check: the bound computed from each variant's
         spectrum must agree with the fixed-degree cold reference *)
      let bound_of s =
        let eigenvalues = Array.map (Float.max 0.0) s.Eigen.values in
        (Spectral_bound.compute ~n ~m:16 ~eigenvalues ()).Spectral_bound.bound
      in
      let b_ref = bound_of new_s in
      let agree b = Float.abs (b -. b_ref) <= 1e-4 *. (1.0 +. Float.abs b_ref) in
      let accurate = agree (bound_of auto_s) && agree (bound_of warm_s) in
      Report.add_row r
        [ name; Report.cell_int n; Report.cell_float old_t;
          Report.cell_float new_t; string_of_bool bitwise;
          Report.cell_int fixed_mv; Report.cell_int auto_mv;
          Report.cell_int warm_mv;
          Printf.sprintf "%.0f%%" (100.0 *. reduction auto_mv);
          Printf.sprintf "%.0f%%" (100.0 *. reduction warm_mv);
          string_of_bool accurate ];
      fields :=
        (name ^ "_accuracy_ok", Graphio_obs.Jsonx.Bool accurate)
        :: (name ^ "_warm_reduction", Graphio_obs.Jsonx.Float (reduction warm_mv))
        :: (name ^ "_auto_reduction", Graphio_obs.Jsonx.Float (reduction auto_mv))
        :: (name ^ "_warm_matvecs", Graphio_obs.Jsonx.Int warm_mv)
        :: (name ^ "_auto_matvecs", Graphio_obs.Jsonx.Int auto_mv)
        :: (name ^ "_fixed_matvecs", Graphio_obs.Jsonx.Int fixed_mv)
        :: (name ^ "_kernel_bitwise", Graphio_obs.Jsonx.Bool bitwise)
        :: (name ^ "_new_wall_s", Graphio_obs.Jsonx.Float new_t)
        :: (name ^ "_old_wall_s", Graphio_obs.Jsonx.Float old_t)
        :: !fields)
    families;
  Report.note r
    "'bitwise': new-kernel spectrum identical to the old kernel bit for bit, at the same matvec count";
  Report.note r
    "'auto/warm red': matvecs saved vs the fixed-degree cold solve at equal bound accuracy";
  Report.note r
    "warm runs include only the warm solve; the donor is the earlier cross-h solve the cache already holds";
  emit r;
  extra_json := List.rev !fields

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let fft7 = Fft.build 7 in
  let bhk8 = Bhk.build 8 in
  let mat6 = Matmul.build 6 in
  let lap = Laplacian.normalized fft7 in
  let tests =
    [
      Test.make ~name:"fig7/spectral-bound fft l=7 M=8"
        (Staged.stage (fun () -> ignore (Solver.bound fft7 ~m:8)));
      Test.make ~name:"fig8/spectral-bound matmul n=6 M=32"
        (Staged.stage (fun () -> ignore (Solver.bound mat6 ~m:32)));
      Test.make ~name:"fig10/spectral-bound bhk l=8 M=16"
        (Staged.stage (fun () -> ignore (Solver.bound bhk8 ~m:16)));
      Test.make ~name:"fig11/convex-mincut bhk l=8 M=16"
        (Staged.stage (fun () -> ignore (Graphio_flow.Convex_mincut.bound bhk8 ~m:16)));
      Test.make ~name:"substrate/laplacian-build fft l=7"
        (Staged.stage (fun () -> ignore (Laplacian.normalized fft7)));
      Test.make ~name:"substrate/eigen-smallest h=32 fft l=7"
        (Staged.stage (fun () -> ignore (Graphio_la.Eigen.smallest ~h:32 lap)));
      Test.make ~name:"substrate/pebble-simulate fft l=7 M=8"
        (Staged.stage (fun () ->
             ignore
               (Graphio_pebble.Simulator.simulate fft7 ~order:(Topo.natural fft7) ~m:8)));
      Test.make ~name:"substrate/graph-build fft l=7"
        (Staged.stage (fun () -> ignore (Fft.build 7)));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota ~kde:(Some 10) ())
      Instance.[ monotonic_clock ]
      test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock results
  in
  print_endline "== bechamel: wall-clock micro-benchmarks ==";
  List.iter
    (fun test ->
      let results = benchmark test in
      let stats = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-45s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        stats)
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Store: the out-of-core pipeline — streaming convert, verified mmap  *)
(* load, and the component-decomposed bound on a million-vertex union  *)
(* ------------------------------------------------------------------ *)

(* Peak resident set (VmHWM) in kB from /proc/self/status; 0 where the
   file is unavailable (non-Linux). *)
let peak_rss_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception Sys_error _ -> 0
  | status -> (
      let rec find = function
        | [] -> 0
        | line :: rest ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf
                (String.sub line 6 (String.length line - 6))
                " %d" Fun.id
            else find rest
      in
      try find (String.split_on_char '\n' status) with Scanf.Scan_failure _ -> 0)

let store () =
  let copies, len = if !quick then (16, 4096) else (128, 8192) in
  let g =
    Dag.replicate (Sequences.independent_chains ~count:1 ~length:len) ~copies
  in
  let n = Dag.n_vertices g and m_edges = Dag.n_edges g in
  let dir = Filename.temp_file "graphio_bench_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let text = Filename.concat dir "big.el" in
  let bin = Filename.concat dir "big.gcsr" in
  let (), text_write_s = time (fun () -> Edgelist.to_file text g) in
  let _, convert_s =
    time (fun () -> Graphio_store.Convert.convert ~input:text ~output:bin)
  in
  let st, load_s = time (fun () -> Graphio_store.Store.load bin) in
  let m = 64 in
  let parts, extract_s =
    time (fun () -> Array.map fst (Graphio_store.Store.component_dags st))
  in
  let out_store, bound_s =
    time (fun () -> Solver.bound_parts parts ~m)
  in
  let out_mem, mem_bound_s = time (fun () -> Solver.bound g ~m) in
  let b_store = out_store.Solver.result.Spectral_bound.bound in
  let b_mem = out_mem.Solver.result.Spectral_bound.bound in
  let bitwise = Int64.equal (Int64.bits_of_float b_store) (Int64.bits_of_float b_mem) in
  let text_bytes = (Unix.stat text).Unix.st_size in
  let bin_bytes = (Unix.stat bin).Unix.st_size in
  let rss = peak_rss_kb () in
  let r =
    Report.create
      ~title:
        (Printf.sprintf
           "store: out-of-core pipeline on union:%d:path:%d (n=%d, m=%d, M=%d)"
           copies len n m_edges m)
      ~columns:[ "quantity"; "value" ]
  in
  Report.add_row r [ "text edgelist (bytes)"; Report.cell_int text_bytes ];
  Report.add_row r [ "binary store (bytes)"; Report.cell_int bin_bytes ];
  Report.add_row r [ "text write (s)"; Report.cell_float text_write_s ];
  Report.add_row r [ "streaming convert (s)"; Report.cell_float convert_s ];
  Report.add_row r [ "verified load (s)"; Report.cell_float load_s ];
  Report.add_row r [ "component extraction (s)"; Report.cell_float extract_s ];
  Report.add_row r [ "decomposed bound (s)"; Report.cell_float bound_s ];
  Report.add_row r [ "in-memory bound (s)"; Report.cell_float mem_bound_s ];
  Report.add_row r [ "bound"; Report.cell_float b_store ];
  Report.add_row r [ "bitwise = in-memory path"; Report.cell_int (if bitwise then 1 else 0) ];
  Report.add_row r [ "peak RSS (kB)"; Report.cell_int rss ];
  Report.note r
    "identical components share one closed-form spectrum: the decomposed solve is O(one component)";
  Report.note r
    "load verifies both checksums + structure before serving a single edge";
  emit r;
  extra_json :=
    [
      ("n", Graphio_obs.Jsonx.Int n);
      ("edges", Graphio_obs.Jsonx.Int m_edges);
      ("m", Graphio_obs.Jsonx.Int m);
      ("text_bytes", Graphio_obs.Jsonx.Int text_bytes);
      ("bin_bytes", Graphio_obs.Jsonx.Int bin_bytes);
      ("text_write_s", Graphio_obs.Jsonx.Float text_write_s);
      ("convert_s", Graphio_obs.Jsonx.Float convert_s);
      ("load_s", Graphio_obs.Jsonx.Float load_s);
      ("extract_s", Graphio_obs.Jsonx.Float extract_s);
      ("bound_s", Graphio_obs.Jsonx.Float bound_s);
      ("mem_bound_s", Graphio_obs.Jsonx.Float mem_bound_s);
      ("bound", Graphio_obs.Jsonx.Float b_store);
      ("bitwise_equal", Graphio_obs.Jsonx.Bool bitwise);
      ("components", Graphio_obs.Jsonx.Int (Array.length parts));
      ("peak_rss_kb", Graphio_obs.Jsonx.Int rss);
    ]

(* ------------------------------------------------------------------ *)
(* Portfolio: per-method bound and wall time across the workload zoo   *)
(* ------------------------------------------------------------------ *)

(* One [Solver.bound ~method_:Portfolio] call per graph: the outcome's
   per-member records carry each method's bound and wall time, so the
   table (and BENCH_10.json) shows who wins where and what each member
   costs.  The acceptance bar rides along: the portfolio headline must
   dominate both the Normalized and Standard members on every graph. *)
let portfolio () =
  let graphs =
    if !quick then
      [
        ("fft:7", Fft.build 7, 8);
        ("bhk:8", Bhk.build 8, 8);
        ("grid:24:24", Stencil.grid ~rows:24 ~cols:24, 8);
        ("er:400:0.02:1", Er.gnp ~n:400 ~p:0.02 ~seed:1, 4);
      ]
    else
      [
        ("fft:9", Fft.build 9, 8);
        ("bhk:10", Bhk.build 10, 8);
        ("grid:48:48", Stencil.grid ~rows:48 ~cols:48, 8);
        ("er:1000:0.01:1", Er.gnp ~n:1000 ~p:0.01 ~seed:1, 4);
      ]
  in
  let members = Method.concrete in
  let r =
    Report.create ~title:"portfolio: per-method bound and wall time"
      ~columns:
        ([ "graph"; "n"; "M" ]
        @ List.concat_map
            (fun m ->
              let s = Method.to_string m in
              [ s; s ^ " s" ])
            members
        @ [ "winner" ])
  in
  let records = ref [] in
  let dominated = ref true in
  List.iter
    (fun (spec, g, m) ->
      let o = Solver.bound ~method_:Solver.Portfolio g ~m in
      let mvs = Array.to_list o.Solver.methods in
      let winner =
        match o.Solver.winner with
        | Some w -> Method.to_string w
        | None -> "-"
      in
      let headline = o.Solver.result.Spectral_bound.bound in
      List.iter
        (fun mv ->
          if
            (mv.Solver.mv_method = Solver.Normalized
            || mv.Solver.mv_method = Solver.Standard)
            && headline < mv.Solver.mv_bound
          then dominated := false)
        mvs;
      Report.add_row r
        (spec
        :: Report.cell_int (Dag.n_vertices g)
        :: Report.cell_int m
        :: List.concat_map
             (fun mv ->
               [
                 Report.cell_float mv.Solver.mv_bound;
                 Report.cell_float mv.Solver.mv_wall_s;
               ])
             mvs
        @ [ winner ]);
      records :=
        Graphio_obs.Jsonx.Obj
          [
            ("spec", Graphio_obs.Jsonx.String spec);
            ("n", Graphio_obs.Jsonx.Int (Dag.n_vertices g));
            ("m", Graphio_obs.Jsonx.Int m);
            ("bound", Graphio_obs.Jsonx.Float headline);
            ("winner", Graphio_obs.Jsonx.String winner);
            ( "methods",
              Graphio_obs.Jsonx.List
                (List.map
                   (fun mv ->
                     Graphio_obs.Jsonx.Obj
                       [
                         ( "method",
                           Graphio_obs.Jsonx.String
                             (Method.to_string mv.Solver.mv_method) );
                         ("bound", Graphio_obs.Jsonx.Float mv.Solver.mv_bound);
                         ("wall_s", Graphio_obs.Jsonx.Float mv.Solver.mv_wall_s);
                       ])
                   mvs) );
          ]
        :: !records)
    graphs;
  Report.note r
    (if !dominated then
       "portfolio >= normalized and standard on every graph (acceptance bar)"
     else "REGRESSION: a member beat the portfolio headline");
  emit r;
  extra_json :=
    [
      ("graphs", Graphio_obs.Jsonx.List (List.rev !records));
      ("dominates_members", Graphio_obs.Jsonx.Bool !dominated);
    ]

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("sec51", sec51);
    ("sec52", sec52);
    ("sec53", sec53);
    ("thm6", thm6);
    ("relaxation", relaxation);
    ("gallery", gallery);
    ("ablations", ablations);
    ("tightness", tightness);
    ("sandwich", sandwich);
    ("batch", batch);
    ("serve", serve);
    ("recognize", recognize);
    ("eigen", eigen);
    ("store", store);
    ("portfolio", portfolio);
    ("bechamel", bechamel);
  ]

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--csv" :: rest ->
        csv_mode := true;
        parse acc rest
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse acc rest
    | [ "--json" ] ->
        prerr_endline "bench: --json requires an output path";
        exit 2
    | "--faults" :: plan :: rest -> (
        (* chaos benchmarking: run the sections with fault injection live
           (e.g. to measure the cache's corrupt-record recovery cost) *)
        match Graphio_fault.parse plan with
        | Ok p ->
            Graphio_fault.set p;
            parse acc rest
        | Error msg ->
            Printf.eprintf "bench: %s\n" msg;
            exit 2)
    | [ "--faults" ] ->
        prerr_endline "bench: --faults requires a plan string";
        exit 2
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            njobs := v;
            parse acc rest
        | _ ->
            prerr_endline "bench: -j requires a positive integer";
            exit 2)
    | [ "-j" ] ->
        prerr_endline "bench: -j requires a positive integer";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match args with
    | [] -> sections
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name sections with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown section %S (available: %s)\n" name
                  (String.concat ", " (List.map fst sections));
                exit 2)
          names
  in
  let records = ref [] in
  List.iter
    (fun (name, f) ->
      extra_json := [];
      let before = Graphio_obs.Metrics.snapshot () in
      let (), dt = time f in
      let after = Graphio_obs.Metrics.snapshot () in
      let delta c = counter_of after c - counter_of before c in
      let dense = delta "la.eigen.dense_solves"
      and sparse = delta "la.eigen.sparse_solves" in
      let backend =
        match (dense > 0, sparse > 0) with
        | true, true -> "dense+sparse"
        | true, false -> "dense"
        | false, true -> "sparse"
        | false, false -> "-"
      in
      records :=
        Graphio_obs.Jsonx.Obj
          ([
             ("section", Graphio_obs.Jsonx.String name);
             ("wall_s", Graphio_obs.Jsonx.Float dt);
             ("matvecs", Graphio_obs.Jsonx.Int (delta "la.eigen.matvecs"));
             ("backend", Graphio_obs.Jsonx.String backend);
           ]
          @ !extra_json)
        :: !records;
      Printf.printf "[section %s completed in %.1fs]\n\n" name dt;
      flush stdout)
    selected;
  match !json_path with
  | None -> ()
  | Some path ->
      Graphio_obs.Jsonx.to_file path
        (Graphio_obs.Jsonx.Obj
           [
             ("quick", Graphio_obs.Jsonx.Bool !quick);
             ("sections", Graphio_obs.Jsonx.List (List.rev !records));
           ]);
      Printf.printf "wrote per-section bench records to %s\n" path
