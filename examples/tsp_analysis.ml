(* Bellman-Held-Karp / TSP analysis (Section 5.1 and Figure 10).

   The dynamic program over city subsets has the boolean hypercube as its
   computation graph.  This example:
   - actually solves small TSP instances through the tracing DSL (so the
     graph is extracted from a real computation, like the paper's solver),
   - compares the numeric spectral bound against the Section 5.1 analytic
     bound and the closed-form hypercube spectrum,
   - shows the convex min-cut baseline and a simulated upper bound.

   Run with:  dune exec examples/tsp_analysis.exe *)

open Graphio_graph
open Graphio_workloads
open Graphio_spectra
open Graphio_trace
open Graphio_core

let random_distances seed l =
  let rng = Graphio_la.Rng.create seed in
  let d = Array.make_matrix l l 0.0 in
  for i = 0 to l - 1 do
    for j = i + 1 to l - 1 do
      let v = 1.0 +. (9.0 *. Graphio_la.Rng.float rng) in
      d.(i).(j) <- v;
      d.(j).(i) <- v
    done
  done;
  d

let () =
  (* --- a real TSP solved through the tracer --- *)
  let l = 6 in
  let dist = random_distances 42 l in
  let ctx = Trace.create () in
  let solution = Programs.held_karp ctx dist in
  Printf.printf "%d-city shortest Hamiltonian path (traced Held-Karp): %.3f\n"
    l (Trace.payload solution);
  Printf.printf "brute force cross-check:                              %.3f\n\n"
    (Programs.brute_force_shortest_path dist);
  let traced = Trace.graph ctx in
  Printf.printf "extracted graph: %d vertices, %d edges (the %d-cube)\n\n"
    (Dag.n_vertices traced) (Dag.n_edges traced) l;

  (* --- bounds across problem sizes --- *)
  let m = 16 in
  let r =
    Report.create
      ~title:(Printf.sprintf "Bellman-Held-Karp bounds, M = %d" m)
      ~columns:[ "cities"; "n=2^l"; "thm4"; "thm5 closed-form"; "analytic 5.1"; "mincut"; "simulated" ]
  in
  List.iter
    (fun l ->
      let g = Bhk.build l in
      let thm4 = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let closed =
        (Solver.bound_of_spectrum
           ~spectrum:(Hypercube_spectra.spectrum l)
           ~scale:(1.0 /. float_of_int l)
           ~n:(1 lsl l) ~m ())
          .Spectral_bound.bound
      in
      let analytic = Float.max 0.0 (fst (Analytic.hypercube_best ~l ~m)) in
      let mincut = Graphio_flow.Convex_mincut.bound g ~m in
      let sim =
        (Graphio_pebble.Simulator.best_upper_bound g ~m).Graphio_pebble.Simulator.io
      in
      Report.add_row r
        [
          Report.cell_int l;
          Report.cell_int (1 lsl l);
          Report.cell_float thm4;
          Report.cell_float closed;
          Report.cell_float analytic;
          Report.cell_int mincut;
          Report.cell_int sim;
        ])
    [ 6; 7; 8; 9; 10 ];
  Report.note r "analytic 5.1 = alpha-optimized (1/l) floor(2^l/k) sum(2i C(l,i)) - 2kM";
  Report.print r;

  (* --- the nontriviality threshold of Section 5.1 --- *)
  print_newline ();
  let t =
    Report.create ~title:"Nontriviality threshold M <= 2^l/(l+1)^2 (alpha = 1)"
      ~columns:[ "cities"; "threshold"; "bound at M=threshold/2"; "bound at M=2*threshold" ]
  in
  List.iter
    (fun l ->
      let thr = Analytic.hypercube_nontrivial_m ~l in
      let below = Analytic.hypercube_alpha1 ~l ~m:(max 1 (int_of_float (thr /. 2.0))) in
      let above = Analytic.hypercube_alpha1 ~l ~m:(int_of_float (2.0 *. thr) + 1) in
      Report.add_row t
        [
          Report.cell_int l;
          Report.cell_float thr;
          Report.cell_float below;
          Report.cell_float above;
        ])
    [ 10; 12; 14; 16 ];
  Report.print t
