(* Erdős-Rényi random graphs (Section 5.3).

   The paper characterizes the spectral bound on G(n, p) in two regimes:
   - sparse, near the connectivity threshold: p = p0 log n / (n - 1),
     where the bound's leading term is n/(1+sqrt(6/p0)) (1-sqrt(2/p0)) - 4M;
   - dense (np/log n -> infinity): the bound approaches n/2 - 4M.

   This example samples actual random graphs, computes the numeric
   Theorem 5 bound with k = 2 (the regime the formulas describe) and the
   full k-optimized bound, and prints them against the probabilistic
   formulas.

   Run with:  dune exec examples/random_graphs.exe *)

open Graphio_graph
open Graphio_la
open Graphio_core

(* Theorem 5 with k = 2 computed directly: floor(n/2) lambda_2 / dmax - 4M. *)
let thm5_k2 g ~m =
  let n = Dag.n_vertices g in
  let lap = Laplacian.standard g in
  let spec = Eigen.smallest ~h:2 lap in
  let lambda2 = Float.max 0.0 spec.Eigen.values.(1) in
  let dmax = float_of_int (Dag.max_out_degree g) in
  Float.max 0.0 ((float_of_int (n / 2) *. lambda2 /. dmax) -. (4.0 *. float_of_int m))

let () =
  let m = 4 in
  let p0 = 8.0 in
  let sparse =
    Report.create
      ~title:(Printf.sprintf "Sparse regime p = %.0f log n/(n-1), M = %d" p0 m)
      ~columns:[ "n"; "p"; "lambda2"; "dmax"; "thm5 k=2"; "formula 5.3"; "optimized" ]
  in
  List.iter
    (fun n ->
      let p = Er.connectivity_regime_p ~n ~p0 in
      let g = Er.gnp_connected ~n ~p ~seed:(n * 17) ~max_attempts:100 in
      let lap = Laplacian.standard g in
      let lambda2 = (Eigen.smallest ~h:2 lap).Eigen.values.(1) in
      let formula = Analytic.er_sparse ~n ~p0 ~m in
      let opt = (Solver.bound ~method_:Solver.Standard g ~m).Solver.result in
      Report.add_row sparse
        [
          Report.cell_int n;
          Report.cell_float p;
          Report.cell_float lambda2;
          Report.cell_int (Dag.max_out_degree g);
          Report.cell_float (thm5_k2 g ~m);
          Report.cell_float formula;
          Report.cell_float opt.Spectral_bound.bound;
        ])
    [ 100; 200; 400; 800 ];
  Report.note sparse "formula 5.3 is the leading term; finite-n values fluctuate around it";
  Report.print sparse;

  print_newline ();
  let dense =
    Report.create
      ~title:(Printf.sprintf "Dense regime p = 0.5, M = %d" m)
      ~columns:[ "n"; "lambda2"; "thm5 k=2"; "n/2 - 4M" ]
  in
  List.iter
    (fun n ->
      let g = Er.gnp_connected ~n ~p:0.5 ~seed:(n * 23) ~max_attempts:20 in
      let lap = Laplacian.standard g in
      let lambda2 = (Eigen.smallest ~h:2 lap).Eigen.values.(1) in
      Report.add_row dense
        [
          Report.cell_int n;
          Report.cell_float lambda2;
          Report.cell_float (thm5_k2 g ~m);
          Report.cell_float (Analytic.er_dense ~n ~m);
        ])
    [ 100; 200; 400; 800 ];
  Report.note dense "as n grows the measured k=2 bound approaches the n/2 - 4M asymptote";
  Report.print dense
