(* FFT / butterfly analysis (Section 5.2 and Figure 7).

   Compares, for growing FFT levels l:
   - the numeric Theorem 4 bound (out-degree-normalized Laplacian),
   - the numeric Theorem 5 bound (plain Laplacian / max out-degree),
   - the exact closed-form-spectrum bound (Theorem 7's eigenvalues —
     works at any size without an eigensolver),
   - the paper's analytic Section 5.2 bound (alpha-optimized),
   - the published Hong-Kung growth shape l*2^l / log2 M,
   - a simulated schedule's I/O, an upper bound on the optimal J.

   Run with:  dune exec examples/fft_analysis.exe *)

open Graphio_graph
open Graphio_workloads
open Graphio_spectra
open Graphio_core

let () =
  let m = 8 in
  let r =
    Report.create
      ~title:(Printf.sprintf "FFT bounds, M = %d" m)
      ~columns:
        [ "l"; "n"; "thm4"; "thm5"; "closed-form"; "analytic 5.2"; "hong-kung"; "simulated" ]
  in
  List.iter
    (fun l ->
      let g = Fft.build l in
      let n = Dag.n_vertices g in
      let thm4 = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let thm5 =
        (Solver.bound ~method_:Solver.Standard g ~m).Solver.result.Spectral_bound.bound
      in
      let closed =
        (Solver.bound_of_spectrum
           ~spectrum:(Butterfly_spectra.spectrum l)
           ~scale:0.5 ~n ~m ())
          .Spectral_bound.bound
      in
      let analytic = Float.max 0.0 (fst (Analytic.fft_best ~l ~m)) in
      let hk = Analytic.fft_hong_kung ~l ~m in
      let sim = (Graphio_pebble.Simulator.best_upper_bound g ~m).Graphio_pebble.Simulator.io in
      Report.add_row r
        [
          Report.cell_int l;
          Report.cell_int n;
          Report.cell_float thm4;
          Report.cell_float thm5;
          Report.cell_float closed;
          Report.cell_float analytic;
          Report.cell_float hk;
          Report.cell_int sim;
        ])
    [ 3; 4; 5; 6; 7; 8; 9 ];
  Report.note r "thm4/thm5: numeric spectral bounds; closed-form: exact Theorem 7 spectrum";
  Report.note r "every lower bound sits below the simulated schedule, as it must";
  Report.print r;

  (* Closed form reaches sizes no eigensolver needs to touch. *)
  print_newline ();
  let big =
    Report.create ~title:"Closed-form Theorem 5 bound at large sizes (no eigensolver)"
      ~columns:[ "l"; "n"; "closed-form bound"; "hong-kung shape" ]
  in
  List.iter
    (fun l ->
      let n = Butterfly_spectra.n_vertices l in
      let b =
        Solver.bound_of_spectrum ~h:4096
          ~spectrum:(Butterfly_spectra.spectrum l)
          ~scale:0.5 ~n ~m ()
      in
      Report.add_row big
        [
          Report.cell_int l;
          Report.cell_int n;
          Report.cell_float b.Spectral_bound.bound;
          Report.cell_float (Analytic.fft_hong_kung ~l ~m);
        ])
    [ 12; 16; 20; 24 ];
  Report.print big
