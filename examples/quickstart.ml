(* Quickstart: trace a computation, extract its graph, lower-bound its I/O.

   This walks the full public API on the paper's Figure 1 example (the
   inner product of two 2-element vectors) and a slightly larger one:

   1. run ordinary arithmetic through the tracing DSL,
   2. freeze the computation graph,
   3. compute the spectral lower bound (Theorem 4) and the convex min-cut
      baseline,
   4. simulate a real schedule to get an upper bound,
   5. print everything side by side.

   Run with:  dune exec examples/quickstart.exe *)

open Graphio_trace
open Graphio_graph
open Graphio_core

let analyze name g ~m =
  let spectral = (Solver.bound g ~m).Solver.result in
  let mincut = Graphio_flow.Convex_mincut.bound g ~m in
  let simulated = Graphio_pebble.Simulator.best_upper_bound g ~m in
  let r =
    Report.create ~title:(Printf.sprintf "%s (n=%d, M=%d)" name (Dag.n_vertices g) m)
      ~columns:[ "quantity"; "value" ]
  in
  Report.add_row r [ "vertices"; Report.cell_int (Dag.n_vertices g) ];
  Report.add_row r [ "edges"; Report.cell_int (Dag.n_edges g) ];
  Report.add_row r [ "spectral lower bound (Thm 4)"; Report.cell_float spectral.Spectral_bound.bound ];
  Report.add_row r [ "  best segment count k"; Report.cell_int spectral.Spectral_bound.best_k ];
  Report.add_row r [ "convex min-cut lower bound"; Report.cell_int mincut ];
  Report.add_row r [ "simulated I/O (upper bound)"; Report.cell_int simulated.Graphio_pebble.Simulator.io ];
  Report.print r;
  print_newline ()

let () =
  (* --- Figure 1: inner product of two 2-vectors --- *)
  let ctx = Trace.create () in
  let result = Programs.inner_product ctx [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  Printf.printf "traced inner product result: %g (expected 11)\n\n" (Trace.payload result);
  let g = Trace.graph ctx in
  analyze "figure-1 inner product" g ~m:3;

  (* --- the same pipeline on a computation that no longer fits cache --- *)
  let ctx = Trace.create () in
  let xs = Array.init 256 (fun i -> float_of_int (i mod 7)) in
  let _ = Programs.walsh_hadamard ctx xs in
  analyze "256-point butterfly (traced WHT)" (Trace.graph ctx) ~m:4;

  (* --- writing the graph out for external tools --- *)
  let dot = Dot.to_string ~name:"inner_product" g in
  Printf.printf "Graphviz export of the Figure 1 graph:\n%s\n" dot;
  Printf.printf "Edge-list serialization:\n%s" (Edgelist.to_string g)
