(* Schedule study: how much does the evaluation order matter, and how
   close do lower and upper bounds come?

   The paper frames optimal I/O as a minimization over topological orders
   (section 3.1).  For a gallery of computation graphs this example:

   - simulates the standard schedules (natural / Kahn BFS / DFS) and a
     hill-climbed improvement (Graphio_pebble.Schedule_search),
   - evaluates the exact Theorem-2 partition bound on the best schedule
     found (a lower bound on *that schedule's* I/O),
   - prints the spectral lower bound on J* next to them.

   The gap between the spectral bound and the best simulated schedule
   brackets how far either side could still be improved.

   Run with:  dune exec examples/schedule_study.exe *)

open Graphio_graph
open Graphio_workloads
open Graphio_pebble
open Graphio_core

let () =
  let cases =
    [
      ("fft l=7", Fft.build 7, 4);
      ("bhk l=8", Bhk.build 8, 8);
      ("matmul n=5", Matmul.build 5, 8);
      ("strassen n=4", Strassen.build 4, 8);
      ("pyramid 40", Stencil.pyramid 40, 4);
      ("stencil 32x16", Stencil.build ~width:32 ~steps:16 (), 4);
      ("bitonic l=4", Bitonic.build 4, 4);
      ("reduction 256", Reduction.build 256, 4);
      ("horner d=60", Sequences.horner 60, 4);
    ]
  in
  let r =
    Report.create ~title:"Schedules vs bounds (Belady eviction)"
      ~columns:
        [ "graph"; "M"; "spectral J*"; "partition(best X)"; "natural"; "kahn"; "dfs";
          "fiedler"; "searched" ]
  in
  List.iter
    (fun (name, g, m) ->
      let m = max m (Simulator.min_feasible_m g) in
      let io order = (Simulator.simulate g ~order ~m).Simulator.io in
      let natural = io (Topo.natural g) in
      let kahn = io (Topo.kahn g) in
      let dfs = io (Topo.dfs g) in
      let fiedler = io (Spectral_order.fiedler_order g) in
      let searched = Schedule_search.optimize ~budget:150 g ~m in
      let spectral = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let _, partition =
        Partition_bound.best g ~order:searched.Schedule_search.order ~m
      in
      Report.add_row r
        [
          name;
          Report.cell_int m;
          Report.cell_float spectral;
          Report.cell_float (Float.max 0.0 partition);
          Report.cell_int natural;
          Report.cell_int kahn;
          Report.cell_int dfs;
          Report.cell_int fiedler;
          Report.cell_int searched.Schedule_search.result.Simulator.io;
        ])
    cases;
  Report.note r "partition(best X) = exact Theorem-2 bound on the searched schedule";
  Report.note r
    "low-connectivity shapes get ~0 spectral bounds; their real I/O depends on the schedule";
  Report.note r
    "(a tree reduction at M=4 genuinely needs spills under any order: depth > M)";
  Report.print r
