(* Matrix-multiplication analysis (Figures 8 and 9).

   Naive and Strassen multiplication graphs: numeric spectral bounds,
   the convex min-cut baseline (trivial on naive matmul, reproducing the
   paper's finding), published growth shapes, and simulated upper bounds.

   Run with:  dune exec examples/matmul_analysis.exe *)

open Graphio_graph
open Graphio_workloads
open Graphio_core

let () =
  let m = 32 in
  let naive =
    Report.create
      ~title:(Printf.sprintf "Naive matmul, M = %d" m)
      ~columns:[ "n"; "vertices"; "spectral"; "mincut"; "n^3/sqrt(M)"; "simulated" ]
  in
  List.iter
    (fun n ->
      let g = Matmul.build n in
      let spectral = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let mincut =
        (* O(n) max-flows: cap like the paper capped its 1-day runs *)
        if Dag.n_vertices g <= 1200 then
          Report.cell_int (Graphio_flow.Convex_mincut.bound g ~m)
        else "-"
      in
      let published = float_of_int (n * n * n) /. sqrt (float_of_int m) in
      let sim =
        (Graphio_pebble.Simulator.best_upper_bound g ~m).Graphio_pebble.Simulator.io
      in
      Report.add_row naive
        [
          Report.cell_int n;
          Report.cell_int (Dag.n_vertices g);
          Report.cell_float spectral;
          mincut;
          Report.cell_float published;
          Report.cell_int sim;
        ])
    [ 4; 6; 8; 10; 12 ];
  Report.note naive "published shape: Irony-Toledo-Tiskin Omega(n^3/sqrt(M))";
  Report.note naive "the convex min-cut baseline is trivial here, as the paper reports";
  Report.print naive;

  print_newline ();
  let m = 8 in
  let strassen =
    Report.create
      ~title:(Printf.sprintf "Strassen matmul, M = %d" m)
      ~columns:[ "n"; "vertices"; "spectral"; "mincut"; "(n/sqrt M)^lg7 * M"; "simulated" ]
  in
  List.iter
    (fun n ->
      let g = Strassen.build n in
      let spectral = (Solver.bound g ~m).Solver.result.Spectral_bound.bound in
      let mincut =
        if Dag.n_vertices g <= 2000 then
          Report.cell_int (Graphio_flow.Convex_mincut.bound g ~m)
        else "-"
      in
      let published =
        (Float.pow (float_of_int n /. sqrt (float_of_int m)) (log 7.0 /. log 2.0))
        *. float_of_int m
      in
      let sim =
        (Graphio_pebble.Simulator.best_upper_bound g ~m).Graphio_pebble.Simulator.io
      in
      Report.add_row strassen
        [
          Report.cell_int n;
          Report.cell_int (Dag.n_vertices g);
          Report.cell_float spectral;
          mincut;
          Report.cell_float published;
          Report.cell_int sim;
        ])
    [ 2; 4; 8; 16 ];
  Report.note strassen "published shape: Ballard-Demmel-Holtz-Schwartz edge-expansion bound";
  Report.print strassen;

  (* Ablation: how the sum shape (n-ary vs binary-tree sums) changes the
     bound on the same mathematical computation. *)
  print_newline ();
  let ab =
    Report.create ~title:"Ablation: dot-product sum shape (M = 16)"
      ~columns:[ "n"; "n-ary sums"; "binary sums" ]
  in
  List.iter
    (fun n ->
      let b1 = (Solver.bound (Matmul.build n) ~m:16).Solver.result.Spectral_bound.bound in
      let b2 =
        (Solver.bound (Matmul.build_binary_sums n) ~m:16).Solver.result.Spectral_bound.bound
      in
      Report.add_row ab
        [ Report.cell_int n; Report.cell_float b1; Report.cell_float b2 ])
    [ 8; 10; 12 ];
  Report.note ab "the graph shape (not just the algorithm) determines the spectral bound";
  Report.print ab
