(* Parallel spectral bounds (Theorem 6).

   With p processors (each holding fast memory M), at least one processor
   must incur J* >= floor(n/(k p)) sum_{i<=k} lambda_i - 2kM.  This example
   sweeps p on the FFT and Bellman-Held-Karp graphs and shows how the
   per-processor guarantee degrades, plus the communication-volume view
   p * bound (a lower bound on total traffic if work were balanced).

   Run with:  dune exec examples/parallel_scaling.exe *)

open Graphio_graph
open Graphio_workloads
open Graphio_core

let sweep name g ~m ~ps =
  let r =
    Report.create
      ~title:(Printf.sprintf "%s (n=%d, M=%d): Theorem 6 across processors" name
                (Dag.n_vertices g) m)
      ~columns:[ "p"; "per-processor bound"; "best k"; "p * bound" ]
  in
  List.iter
    (fun p ->
      let b = (Solver.bound ~p g ~m).Solver.result in
      Report.add_row r
        [
          Report.cell_int p;
          Report.cell_float b.Spectral_bound.bound;
          Report.cell_int b.Spectral_bound.best_k;
          Report.cell_float (float_of_int p *. b.Spectral_bound.bound);
        ])
    ps;
  Report.note r "p = 1 recovers the sequential Theorem 4 bound";
  Report.print r;
  print_newline ()

let () =
  sweep "FFT l=9" (Fft.build 9) ~m:4 ~ps:[ 1; 2; 4; 8; 16 ];
  sweep "Bellman-Held-Karp l=10" (Bhk.build 10) ~m:16 ~ps:[ 1; 2; 4; 8 ];
  (* closed-form variant: parallel bounds at sizes beyond any eigensolver *)
  let l = 16 in
  let n = Graphio_spectra.Butterfly_spectra.n_vertices l in
  let r =
    Report.create
      ~title:(Printf.sprintf "FFT l=%d (n=%d) via closed-form spectrum" l n)
      ~columns:[ "p"; "per-processor bound" ]
  in
  List.iter
    (fun p ->
      let b =
        Solver.bound_of_spectrum ~p
          ~spectrum:(Graphio_spectra.Butterfly_spectra.spectrum l)
          ~scale:0.5 ~n ~m:8 ()
      in
      Report.add_row r [ Report.cell_int p; Report.cell_float b.Spectral_bound.bound ])
    [ 1; 2; 4; 8; 16; 32 ];
  Report.print r
