(* graphio — spectral I/O lower bounds for computation graphs (CLI).

   Subcommands:
     generate   build a workload graph and write it as an edge list
     convert    stream a text edge list into the binary CSR store
     bound      spectral lower bound (Theorems 4/5/6)
     baseline   convex min-cut lower bound (Elango et al.)
     simulate   play a schedule in the two-level memory model
     spectrum   smallest Laplacian eigenvalues
     export     Graphviz DOT output
     batch      many bounds concurrently from a jobs file (JSON lines)
     serve      long-lived bound service over a socket (JSON lines)
     client     line-oriented client for a running serve
     top        live latency/cache/pool dashboard for a running serve

   Graphs are supplied either with --graph SPEC (generated on the fly) or
   --file PATH (text edge-list format, see Graphio_graph.Edgelist, or a
   binary store produced by convert — sniffed by magic). *)

open Cmdliner
open Graphio_graph
open Graphio_core

(* ------------------------------------------------------------------ *)
(* Graph specs                                                         *)
(* ------------------------------------------------------------------ *)

let parse_spec = Graphio_workloads.Spec.parse

(* [--file] accepts both formats: binary stores are sniffed by magic, so
   every subcommand works on a [graphio convert]ed file.  Subcommands that
   can avoid materializing the whole graph (bound) load the store
   directly; the rest go through [to_dag]. *)
let load_graph ~spec ~file =
  match (spec, file) with
  | Some s, None -> (
      match parse_spec s with
      | Ok g -> g
      | Error msg -> raise (Invalid_argument msg))
  | None, Some path ->
      if Graphio_store.Store.is_store_file path then
        Graphio_store.Store.to_dag (Graphio_store.Store.load path)
      else Edgelist.of_file path
  | _ -> raise (Invalid_argument "provide exactly one of --graph or --file")

let spec_arg =
  Arg.(value & opt (some string) None & info [ "g"; "graph" ] ~docv:"SPEC"
         ~doc:"Generate the graph from a spec (e.g. fft:8, bhk:10, matmul:6, strassen:4, inner:16, er:200:0.05).")

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"PATH"
         ~doc:"Load the graph from an edge-list file.")

let m_arg =
  Arg.(value & opt int 8 & info [ "m"; "memory" ] ~docv:"M"
         ~doc:"Fast-memory size in elements.")

(* Observability flags, shared by every subcommand: [--metrics] prints the
   process-wide counter/histogram table to stderr on success (stderr so
   the primary stdout output stays scriptable), [--metrics-out FILE]
   writes the same table to a file instead — so it can never interleave
   with NDJSON stdout in batch pipelines — [--trace FILE] enables span
   collection and writes a Chrome trace-event JSON on exit, and
   [--log FILE] ([-] = stderr) streams leveled NDJSON structured events
   ([--log-level] filters).  Every invocation runs under a fresh ambient
   request id ([cli-PID]) so its spans and events correlate. *)
type obs = {
  metrics : bool;
  metrics_out : string option;
  trace : string option;
  log : string option;
  log_level : string;
}

let obs_term =
  let metrics =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"Print the metrics summary table to stderr on exit.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the metrics summary table to $(docv) on exit (keeps \
                 stdout/stderr clean in pipelines).")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record hierarchical spans and write Chrome trace-event JSON \
                 (load in chrome://tracing or Perfetto).")
  in
  let log =
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
           ~doc:"Stream structured NDJSON events to $(docv) ($(b,-) = stderr).")
  in
  let log_level =
    Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Minimum event level: debug | info | warn | error.")
  in
  Term.(
    const (fun metrics metrics_out trace log log_level ->
        { metrics; metrics_out; trace; log; log_level })
    $ metrics $ metrics_out $ trace $ log $ log_level)

(* Escape hatch for the closed-form dispatch tier: recognized graphs
   (butterfly/hypercube/path/grid) normally answer from the exact
   lib/spectra multiset; this forces the numeric eigensolve instead.
   Offered on every subcommand that evaluates bounds. *)
let no_closed_form_arg =
  Arg.(
    value & flag
    & info [ "no-closed-form" ]
        ~doc:
          "Disable the closed-form spectrum dispatch: always run the \
           numeric eigensolve, even on recognized graph families.")

(* Chebyshev filter degree policy for sparse eigensolves: the adaptive
   tuner by default, or a pinned integer degree.  Offered on every
   subcommand that can reach the sparse numeric tier. *)
let filter_degree_conv =
  let parse s =
    match Graphio_la.Filtered.degree_of_string s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
             (Printf.sprintf "%S: expected auto or an integer degree >= 2" s))
  in
  let print ppf d =
    Format.pp_print_string ppf (Graphio_la.Filtered.degree_name d)
  in
  Arg.conv (parse, print)

let filter_degree_arg =
  Arg.(
    value
    & opt filter_degree_conv Graphio_la.Filtered.Auto
    & info [ "filter-degree" ] ~docv:"POLICY"
        ~doc:
          "Chebyshev filter degree for sparse eigensolves: $(b,auto) \
           (re-tuned every sweep from the observed residual decay, the \
           default) or a fixed integer >= 2.")

(* Ritz warm starts are on by default for the cached tiers (batch/serve):
   a cache miss seeds its initial block from locked Ritz vectors of a
   related solve at a different h.  The flag opts out, restoring bitwise
   determinism across cache states. *)
let no_warm_start_arg =
  Arg.(
    value & flag
    & info [ "no-warm-start" ]
        ~doc:
          "Never seed a sparse eigensolve from cached Ritz vectors of a \
           related solve (different $(b,h), same graph/method): warm \
           starts reach the same bounds to solver tolerance but are not \
           bitwise-identical to cold solves.")

(* Deterministic fault injection (testing only): the plan activates named
   sites across cache/server/pool; with no plan the sites stay inert.
   Offered on the subcommands that exercise those subsystems. *)
let faults_arg =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN"
         ~doc:"Activate the deterministic fault-injection plan $(docv), e.g. \
               $(b,cache.disk.write:p=0.2:seed=7,pool.task:nth=3).  Also read \
               from $(b,GRAPHIO_FAULTS).  Chaos testing only.")

let apply_faults = function
  | None -> ()
  | Some plan -> (
      match Graphio_fault.parse plan with
      | Ok p -> Graphio_fault.set p
      | Error msg -> raise (Invalid_argument msg))

(* All expected failures (bad specs, unreadable/malformed graph files,
   infeasible parameters) surface as one clean line on stderr and exit
   code 1; cmdliner's `Error path is reserved for CLI syntax problems. *)
let handle obs f =
  if obs.trace <> None then Graphio_obs.Span.set_enabled true;
  (match Graphio_obs.Log.level_of_string obs.log_level with
  | Some l -> Graphio_obs.Log.set_level l
  | None ->
      Printf.eprintf "graphio: --log-level %s: expected debug, info, warn or error\n"
        obs.log_level;
      exit 1);
  match
    (try Option.iter Graphio_obs.Log.open_file obs.log
     with Sys_error msg -> raise (Invalid_argument msg));
    Fun.protect ~finally:Graphio_obs.Log.close (fun () ->
        Graphio_obs.Ctx.with_rid
          (Printf.sprintf "cli-%d" (Unix.getpid ()))
          f);
    (match obs.trace with
    | Some path -> Graphio_obs.Span.write_chrome_trace path
    | None -> ());
    let summary =
      if obs.metrics || obs.metrics_out <> None then
        Graphio_obs.Metrics.render_text (Graphio_obs.Metrics.snapshot ())
      else ""
    in
    if obs.metrics then prerr_string summary;
    match obs.metrics_out with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc summary)
    | None -> ()
  with
  | () -> `Ok ()
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Printf.eprintf "graphio: %s\n" msg;
      exit 1
  | exception Graphio_store.Store.Error e ->
      Printf.eprintf "graphio: %s\n" (Graphio_store.Store.error_message e);
      exit 1

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate spec output obs =
  handle obs @@ fun () ->
  match parse_spec spec with
  | Error msg -> raise (Invalid_argument msg)
  | Ok g -> (
      match output with
      | Some path ->
          Edgelist.to_file path g;
          Printf.printf "wrote %d vertices, %d edges to %s\n" (Dag.n_vertices g)
            (Dag.n_edges g) path
      | None -> print_string (Edgelist.to_string g))

let generate_cmd =
  let spec =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Graph family spec, e.g. fft:8.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Output path (stdout if omitted).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Build a workload computation graph")
    Term.(ret (const generate $ spec $ output $ obs_term))

(* ------------------------------------------------------------------ *)
(* convert                                                             *)
(* ------------------------------------------------------------------ *)

let convert input output faults obs =
  handle obs @@ fun () ->
  apply_faults faults;
  let output =
    match output with
    | Some path -> path
    | None -> Filename.remove_extension input ^ ".gcsr"
  in
  let n, m = Graphio_store.Convert.convert ~input ~output in
  Printf.printf "converted %d vertices, %d edges to %s\n" n m output

let convert_cmd =
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH"
           ~doc:"Text edge-list file to convert.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Output path (defaults to the input with a .gcsr extension).")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a text edge list to the binary CSR store (streaming, \
             bounded memory)")
    Term.(ret (const convert $ input $ output $ faults_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* bound                                                               *)
(* ------------------------------------------------------------------ *)

let method_name = Graphio_core.Method.to_string

(* One parser for every CLI surface (bound flag, jobs file, serve
   config): unknown-method errors embed the same Method.expected list the
   server's protocol errors use, so the texts cannot drift. *)
let parse_method s =
  match Graphio_core.Method.of_string s with
  | Some m -> m
  | None ->
      raise
        (Invalid_argument
           (Printf.sprintf "unknown method %S (expected %s)" s
              Graphio_core.Method.expected))

let parse_portfolio = function
  | "" -> None
  | s ->
      Some
        (String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> "")
        |> List.map parse_method)

let portfolio_arg =
  Arg.(
    value
    & opt string ""
    & info [ "portfolio-methods" ] ~docv:"METHODS"
        ~doc:
          "Comma-separated member set for $(b,--method portfolio) (default: \
           every concrete method).")

let backend_name = function
  | Graphio_la.Eigen.Dense -> "dense"
  | Graphio_la.Eigen.Sparse_filtered -> "filtered"

(* Per-component provenance of a decomposed bound, between the method and
   headline lines.  Identical whether the graph arrived as a text edge
   list (decomposed by Solver.bound) or a binary store (decomposed by
   Store.component_dags + Solver.bound_parts): both split into the same
   parts in the same smallest-vertex order. *)
let print_components (o : Solver.outcome) =
  let comps = o.Solver.components in
  Printf.printf "components: %d (merged spectrum h=%d)\n" (Array.length comps)
    (Array.length o.Solver.eigenvalues);
  let shown = min 16 (Array.length comps) in
  for i = 0 to shown - 1 do
    let c = comps.(i) in
    let tier_s =
      match c.Solver.comp_tier with
      | Solver.Closed_form family ->
          Printf.sprintf "closed form %s" (Graphio_recognize.Recognize.name family)
      | Solver.Numeric ->
          Printf.sprintf "numeric (%s)" (backend_name c.Solver.comp_backend)
    in
    Printf.printf "  component %d: n=%d edges=%d %s%s\n" i c.Solver.comp_n
      c.Solver.comp_edges tier_s
      (if c.Solver.comp_cache_hit then " (shared)" else "")
  done;
  if Array.length comps > shown then begin
    let closed =
      Array.fold_left
        (fun acc c ->
          match c.Solver.comp_tier with
          | Solver.Closed_form _ -> acc + 1
          | Solver.Numeric -> acc)
        0 comps
    in
    Printf.printf "  ... %d more (total: %d closed form, %d numeric)\n"
      (Array.length comps - shown) closed (Array.length comps - closed)
  end

(* portfolio provenance, between the tier line and the headline: one line
   per member (bound, k, tier, cache/warm provenance) and the winner *)
let print_portfolio (o : Solver.outcome) =
  print_string "methods:\n";
  Array.iter
    (fun mv ->
      let detail =
        match mv.Solver.mv_method with
        | Solver.Visit -> "counted-cut chains"
        | _ ->
            Printf.sprintf "best k = %d, %s" mv.Solver.mv_best_k
              (match mv.Solver.mv_tier with
              | Solver.Closed_form family ->
                  Printf.sprintf "closed form %s"
                    (Graphio_recognize.Recognize.name family)
              | Solver.Numeric -> "numeric")
      in
      Printf.printf "  %s: bound=%.6g (%s%s%s)\n"
        (method_name mv.Solver.mv_method)
        mv.Solver.mv_bound detail
        (if mv.Solver.mv_cache_hit then ", cached" else "")
        (if mv.Solver.mv_warm_start then ", warm start" else ""))
    o.Solver.methods;
  match o.Solver.winner with
  | Some w -> Printf.printf "winner: %s\n" (method_name w)
  | None -> ()

let bound spec file m h p method_str portfolio_str filter_degree
    no_closed_form faults obs =
  handle obs @@ fun () ->
  apply_faults faults;
  let method_ = parse_method method_str in
  let portfolio = parse_portfolio portfolio_str in
  let closed_form = not no_closed_form in
  (* Binary stores are bounded without materializing the union: components
     are extracted one by one and fed to the decomposed solver path.
     Where both paths fit in memory the output is byte-identical to the
     text-edgelist path. *)
  let (gn, gm, gdmax), o =
    match (spec, file) with
    | None, Some path when Graphio_store.Store.is_store_file path ->
        let st = Graphio_store.Store.load path in
        let parts =
          Array.map fst (Graphio_store.Store.component_dags st)
        in
        ( ( Graphio_store.Store.n_vertices st,
            Graphio_store.Store.n_edges st,
            Graphio_store.Store.max_out_degree st ),
          Solver.bound_parts ~method_ ?portfolio ~h ~p ~filter_degree
            ~closed_form parts ~m )
    | _ ->
        let g = load_graph ~spec ~file in
        ( (Dag.n_vertices g, Dag.n_edges g, Dag.max_out_degree g),
          Solver.bound ~method_ ?portfolio ~h ~p ~filter_degree ~closed_form g
            ~m )
  in
  let b = o.Solver.result in
  Printf.printf "graph: n=%d m_edges=%d max_out_degree=%d\n" gn gm gdmax;
  Printf.printf "method: %s%s\n"
    (match method_ with
    | Solver.Normalized ->
        Printf.sprintf "normalized (Theorem %s)" (if p > 1 then "6" else "4")
    | Solver.Standard -> "standard (Theorem 5)"
    | m -> Graphio_core.Method.describe m)
    (if p > 1 then Printf.sprintf " with p=%d processors" p else "");
  (if Array.length o.Solver.components > 0 then print_components o
   else if method_ <> Solver.Portfolio && method_ <> Solver.Visit then
     match o.Solver.tier with
     | Solver.Closed_form family ->
         Printf.printf "spectrum: closed form, recognized %s (h=%d)\n"
           (Graphio_recognize.Recognize.name family)
           (Array.length o.Solver.eigenvalues)
     | Solver.Numeric ->
         Printf.printf "eigen backend: %s (h=%d)\n"
           (match o.Solver.backend with
           | Graphio_la.Eigen.Dense -> "dense Householder+QL"
           | Graphio_la.Eigen.Sparse_filtered ->
               "Chebyshev-filtered block iteration")
           (Array.length o.Solver.eigenvalues));
  if Array.length o.Solver.methods > 0 then print_portfolio o;
  Printf.printf "lower bound on non-trivial I/O: %.6g (best k = %d, raw = %.6g)\n"
    b.Spectral_bound.bound b.Spectral_bound.best_k b.Spectral_bound.best_raw

let bound_cmd =
  let h =
    Arg.(value & opt int 100 & info [ "eigenvalues" ] ~docv:"H"
           ~doc:"Number of smallest eigenvalues to compute (the paper uses 100).")
  in
  let p =
    Arg.(value & opt int 1 & info [ "p"; "processors" ] ~docv:"P"
           ~doc:"Processor count for the parallel bound (Theorem 6).")
  in
  let method_name =
    Arg.(value & opt string "normalized" & info [ "method" ] ~docv:"METHOD"
           ~doc:"normalized (Theorem 4), standard (Theorem 5), adjacency or \
                 signless (Weyl-surrogate spectral variants), visit \
                 (DAG-visit counted boundary), or portfolio (max over a \
                 member set; see $(b,--portfolio-methods)).")
  in
  Cmd.v
    (Cmd.info "bound" ~doc:"I/O lower bound (spectral methods, DAG-visit, or \
                            a portfolio of both)")
    Term.(
      ret
        (const bound $ spec_arg $ file_arg $ m_arg $ h $ p $ method_name
        $ portfolio_arg $ filter_degree_arg $ no_closed_form_arg $ faults_arg
        $ obs_term))

(* ------------------------------------------------------------------ *)
(* baseline                                                            *)
(* ------------------------------------------------------------------ *)

let baseline spec file m partitioned obs =
  handle obs @@ fun () ->
  let g = load_graph ~spec ~file in
  if partitioned then begin
    let b = Graphio_flow.Convex_mincut.bound_partitioned g ~m ~part_size:(2 * m) in
    Printf.printf "convex min-cut (partitioned into <=%d-vertex parts): %d\n" (2 * m) b
  end
  else begin
    let value, best = Graphio_flow.Convex_mincut.bound_detailed g ~m in
    Printf.printf "convex min-cut lower bound: %d (max wavefront %d at vertex %d)\n"
      value best.Graphio_flow.Convex_mincut.wavefront
      best.Graphio_flow.Convex_mincut.vertex
  end

let baseline_cmd =
  let partitioned =
    Arg.(value & flag & info [ "partitioned" ]
           ~doc:"Use the 2M-partitioned variant (trivial on complex graphs).")
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Convex min-cut lower bound (Elango et al.)")
    Term.(
      ret
        (const baseline $ spec_arg $ file_arg $ m_arg $ partitioned $ obs_term))

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate spec file m order_name policy_name obs =
  handle obs @@ fun () ->
  let g = load_graph ~spec ~file in
  let order =
    match order_name with
    | "natural" -> Topo.natural g
    | "kahn" -> Topo.kahn g
    | "dfs" -> Topo.dfs g
    | "random" -> Topo.random ~seed:42 g
    | other -> raise (Invalid_argument (Printf.sprintf "unknown order %S" other))
  in
  let policy =
    match policy_name with
    | "belady" -> Graphio_pebble.Simulator.Belady
    | "lru" -> Graphio_pebble.Simulator.Lru
    | other -> raise (Invalid_argument (Printf.sprintf "unknown policy %S" other))
  in
  let r = Graphio_pebble.Simulator.simulate ~policy g ~order ~m in
  Printf.printf "schedule: %s, eviction: %s, M=%d\n" order_name policy_name m;
  Printf.printf "non-trivial I/O: %d (reads %d, writes %d, peak resident %d)\n"
    r.Graphio_pebble.Simulator.io r.Graphio_pebble.Simulator.reads
    r.Graphio_pebble.Simulator.writes r.Graphio_pebble.Simulator.peak_resident

let simulate_cmd =
  let order =
    Arg.(value & opt string "natural" & info [ "order" ] ~docv:"ORDER"
           ~doc:"natural | kahn | dfs | random.")
  in
  let policy =
    Arg.(value & opt string "belady" & info [ "policy" ] ~docv:"POLICY"
           ~doc:"belady | lru.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a schedule in the two-level memory model")
    Term.(
      ret
        (const simulate $ spec_arg $ file_arg $ m_arg $ order $ policy
        $ obs_term))

(* ------------------------------------------------------------------ *)
(* spectrum                                                            *)
(* ------------------------------------------------------------------ *)

let spectrum spec file h normalized obs =
  handle obs @@ fun () ->
  let g = load_graph ~spec ~file in
  let lap = if normalized then Laplacian.normalized g else Laplacian.standard g in
  let s = Graphio_la.Eigen.smallest ~h lap in
  Printf.printf "# %s Laplacian, %d smallest eigenvalues (%s backend)\n"
    (if normalized then "out-degree-normalized" else "standard")
    (Array.length s.Graphio_la.Eigen.values)
    (match s.Graphio_la.Eigen.backend with
    | Graphio_la.Eigen.Dense -> "dense"
    | Graphio_la.Eigen.Sparse_filtered -> "lanczos");
  Array.iter (fun l -> Printf.printf "%.10g\n" l) s.Graphio_la.Eigen.values

let spectrum_cmd =
  let h =
    Arg.(value & opt int 20 & info [ "eigenvalues" ] ~docv:"H"
           ~doc:"How many smallest eigenvalues to print.")
  in
  let normalized =
    Arg.(value & flag & info [ "normalized" ]
           ~doc:"Use the out-degree-normalized Laplacian (Theorem 4's).")
  in
  Cmd.v
    (Cmd.info "spectrum" ~doc:"Smallest Laplacian eigenvalues of a graph")
    Term.(
      ret
        (const spectrum $ spec_arg $ file_arg $ h $ normalized $ obs_term))

(* ------------------------------------------------------------------ *)
(* export                                                              *)
(* ------------------------------------------------------------------ *)

let export spec file output obs =
  handle obs @@ fun () ->
  let g = load_graph ~spec ~file in
  let dot = Dot.to_string g in
  match output with
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc dot);
      Printf.printf "wrote %s\n" path
  | None -> print_string dot

let export_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Output path (stdout if omitted).")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a graph as Graphviz DOT")
    Term.(ret (const export $ spec_arg $ file_arg $ output $ obs_term))

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze spec file m with_mincut search_budget obs =
  handle obs @@ fun () ->
  let g = load_graph ~spec ~file in
  let m = max m (Graphio_pebble.Simulator.min_feasible_m g) in
  let r =
    Report.create
      ~title:(Printf.sprintf "analysis (n=%d, edges=%d, M=%d)" (Dag.n_vertices g)
                (Dag.n_edges g) m)
      ~columns:[ "quantity"; "value" ]
  in
  let stats = Stats.compute g in
  Report.add_row r [ "depth (critical path)"; Report.cell_int stats.Stats.depth ];
  Report.add_row r [ "max level width"; Report.cell_int stats.Stats.max_level_width ];
  Report.add_row r [ "components"; Report.cell_int stats.Stats.components ];
  let b4 = (Solver.bound g ~m).Solver.result in
  let b5 = (Solver.bound ~method_:Solver.Standard g ~m).Solver.result in
  Report.add_row r
    [ "spectral lower bound (Thm 4)"; Report.cell_float b4.Spectral_bound.bound ];
  Report.add_row r [ "  best k"; Report.cell_int b4.Spectral_bound.best_k ];
  Report.add_row r
    [ "spectral lower bound (Thm 5)"; Report.cell_float b5.Spectral_bound.bound ];
  if with_mincut then begin
    let value, best = Graphio_flow.Convex_mincut.bound_detailed g ~m in
    Report.add_row r [ "convex min-cut lower bound"; Report.cell_int value ];
    Report.add_row r
      [ "  max wavefront"; Report.cell_int best.Graphio_flow.Convex_mincut.wavefront ]
  end;
  let searched =
    Graphio_pebble.Schedule_search.optimize ~budget:search_budget g ~m
  in
  Report.add_row r
    [ "simulated I/O (initial schedule)";
      Report.cell_int searched.Graphio_pebble.Schedule_search.initial.Graphio_pebble.Simulator.io ];
  Report.add_row r
    [ "simulated I/O (searched schedule)";
      Report.cell_int searched.Graphio_pebble.Schedule_search.result.Graphio_pebble.Simulator.io ];
  let order = searched.Graphio_pebble.Schedule_search.order in
  let _, pv = Partition_bound.best g ~order ~m in
  Report.add_row r
    [ "partition bound on that schedule"; Report.cell_float (Float.max 0.0 pv) ];
  (if Dag.n_vertices g >= 3 then
     let fiedler = Graphio_pebble.Spectral_order.upper_bound g ~m in
     Report.add_row r
       [ "simulated I/O (Fiedler schedule)";
         Report.cell_int fiedler.Graphio_pebble.Simulator.io ]);
  Report.print r

let analyze_cmd =
  let with_mincut =
    Arg.(value & flag & info [ "mincut" ]
           ~doc:"Also run the convex min-cut baseline (O(n) max-flows; slow on large graphs).")
  in
  let budget =
    Arg.(value & opt int 100 & info [ "search-budget" ] ~docv:"N"
           ~doc:"Schedule-search simulator evaluations.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Combined lower/upper-bound analysis of one graph")
    Term.(
      ret
        (const analyze $ spec_arg $ file_arg $ m_arg $ with_mincut $ budget
        $ obs_term))

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep spec file m_from m_to obs =
  handle obs @@ fun () ->
  let g = load_graph ~spec ~file in
  if m_from < 0 || m_to < m_from then
    raise (Invalid_argument "sweep: need 0 <= from <= to");
  (* one eigensolve, many M values *)
  let eig4, _ = Solver.spectrum g in
  let eig5, _ = Solver.spectrum ~method_:Solver.Standard g in
  let n = Dag.n_vertices g in
  print_endline "M,thm4,thm5";
  let m = ref m_from in
  while !m <= m_to do
    let b4 = (Spectral_bound.compute ~n ~m:!m ~eigenvalues:eig4 ()).Spectral_bound.bound in
    let b5 = (Spectral_bound.compute ~n ~m:!m ~eigenvalues:eig5 ()).Spectral_bound.bound in
    Printf.printf "%d,%.6g,%.6g\n" !m b4 b5;
    m := max (!m + 1) (!m * 2)
  done

let sweep_cmd =
  let m_from =
    Arg.(value & opt int 2 & info [ "from" ] ~docv:"M" ~doc:"Smallest memory size.")
  in
  let m_to =
    Arg.(value & opt int 256 & info [ "to" ] ~docv:"M" ~doc:"Largest memory size.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"CSV of the spectral bounds across fast-memory sizes (doubling steps)")
    Term.(
      ret
        (const sweep $ spec_arg $ file_arg $ m_from $ m_to $ obs_term))

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

(* Jobs file: one job per line, [SPEC m=M [p=P] [method=normalized|standard]];
   blank lines and [#] comments are skipped.  SPEC is a generator spec
   (fft:6, er:200:0.05, ...) or [file:PATH] for an edge-list file. *)
let parse_job_line ~path ~lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else begin
    let fail msg =
      raise (Invalid_argument (Printf.sprintf "%s:%d: %s" path lineno msg))
    in
    match
      String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
    with
    | [] -> None
    | spec :: params ->
        let m = ref None and p = ref None and method_ = ref Solver.Normalized in
        List.iter
          (fun param ->
            match String.index_opt param '=' with
            | None -> fail (Printf.sprintf "expected KEY=VALUE, got %S" param)
            | Some i -> (
                let key = String.sub param 0 i in
                let v = String.sub param (i + 1) (String.length param - i - 1) in
                let pos_int name =
                  match int_of_string_opt v with
                  | Some x when x >= 1 -> x
                  | _ -> fail (Printf.sprintf "%s=%S: expected a positive integer" name v)
                in
                match key with
                | "m" -> m := Some (pos_int "m")
                | "p" -> p := Some (pos_int "p")
                | "method" -> (
                    match Graphio_core.Method.of_string v with
                    | Some m -> method_ := m
                    | None ->
                        fail
                          (Printf.sprintf "method=%S: expected %s" v
                             Graphio_core.Method.expected))
                | _ -> fail (Printf.sprintf "unknown key %S" key)))
          params;
        let m = match !m with Some m -> m | None -> fail "missing m=M" in
        let g =
          match String.index_opt spec ':' with
          | Some i when String.sub spec 0 i = "file" ->
              let fpath = String.sub spec (i + 1) (String.length spec - i - 1) in
              if Graphio_store.Store.is_store_file fpath then
                Graphio_store.Store.to_dag (Graphio_store.Store.load fpath)
              else Edgelist.of_file fpath
          | _ -> (
              match parse_spec spec with
              | Ok g -> g
              | Error msg -> fail msg)
        in
        Some (spec, Solver.job ~method_:!method_ ?p:!p g ~m)
  end

let batch path njobs h dense_threshold cache_dir portfolio_str filter_degree
    no_warm_start no_closed_form faults obs =
  handle obs @@ fun () ->
  apply_faults faults;
  let portfolio = parse_portfolio portfolio_str in
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let entries =
    List.mapi (fun i line -> parse_job_line ~path ~lineno:(i + 1) line) lines
    |> List.filter_map Fun.id
    |> Array.of_list
  in
  if Array.length entries = 0 then
    raise (Invalid_argument (Printf.sprintf "%s: no jobs" path));
  let specs = Array.map fst entries and jobs = Array.map snd entries in
  let njobs = if njobs = 0 then Graphio_par.Pool.default_size () else njobs in
  if njobs < 1 then raise (Invalid_argument "-j: need at least 1");
  let cache =
    Option.map (fun dir -> Graphio_cache.Spectrum.create ~dir ()) cache_dir
  in
  let run pool =
    Solver.bound_batch ?cache ?pool ?portfolio ~h ?dense_threshold
      ~filter_degree ~warm_start:(not no_warm_start)
      ~closed_form:(not no_closed_form) jobs
  in
  let results =
    if njobs = 1 then run None
    else
      Graphio_par.Pool.with_pool ~size:njobs (fun pool -> run (Some pool))
  in
  Array.iteri
    (fun i r ->
      let j = r.Solver.job and o = r.Solver.outcome in
      let b = o.Solver.result in
      let open Graphio_obs.Jsonx in
      let fields =
        [
          ("spec", String specs.(i));
          ("n", Int (Dag.n_vertices j.Solver.dag));
          ("edges", Int (Dag.n_edges j.Solver.dag));
          ("m", Int j.Solver.m);
          ("p", Int (Option.value j.Solver.p ~default:1));
          ("method", String (method_name j.Solver.method_));
          ("h", Int (Array.length o.Solver.eigenvalues));
          ("bound", Float b.Spectral_bound.bound);
          ("best_k", Int b.Spectral_bound.best_k);
          ("best_raw", Float b.Spectral_bound.best_raw);
          ("backend", String (backend_name o.Solver.backend));
          ("tier", String (Solver.tier_name o.Solver.tier));
          ("cache_hit", Bool r.Solver.cache_hit);
          ("warm_start", Bool o.Solver.warm_start);
          ("wall_s", Float r.Solver.wall_s);
        ]
      in
      (* per-component provenance, present only when the job decomposed *)
      let fields =
        if Array.length o.Solver.components = 0 then fields
        else
          fields
          @ [
              ( "components",
                List
                  (Array.to_list
                     (Array.map
                        (fun c ->
                          Obj
                            [
                              ("n", Int c.Solver.comp_n);
                              ("edges", Int c.Solver.comp_edges);
                              ("tier", String (Solver.tier_name c.Solver.comp_tier));
                              ("cache_hit", Bool c.Solver.comp_cache_hit);
                            ])
                        o.Solver.components)) );
            ]
      in
      (* per-member values and the winner, present only on portfolio jobs
         (no per-member wall times on the wire: only the aggregate) *)
      let fields =
        if Array.length o.Solver.methods = 0 then fields
        else
          fields
          @ [
              ( "methods",
                List
                  (Array.to_list
                     (Array.map
                        (fun mv ->
                          Obj
                            [
                              ("method", String (method_name mv.Solver.mv_method));
                              ("bound", Float mv.Solver.mv_bound);
                              ("best_k", Int mv.Solver.mv_best_k);
                              ("tier", String (Solver.tier_name mv.Solver.mv_tier));
                              ("cache_hit", Bool mv.Solver.mv_cache_hit);
                              ("warm_start", Bool mv.Solver.mv_warm_start);
                            ])
                        o.Solver.methods)) );
            ]
          @
          match o.Solver.winner with
          | Some w -> [ ("winner", String (method_name w)) ]
          | None -> []
      in
      print_endline (to_string (Obj fields)))
    results

let batch_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOBS"
           ~doc:"Jobs file: one $(b,SPEC m=M [p=P] [method=METHOD]) per line; \
                 blank lines and # comments ignored.")
  in
  let njobs =
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domain-pool size (1 = sequential).  Defaults to \
                 $(b,GRAPHIO_POOL) or the core count.")
  in
  let h =
    Arg.(value & opt int 100 & info [ "eigenvalues" ] ~docv:"H"
           ~doc:"Number of smallest eigenvalues per spectrum.")
  in
  let dense_threshold =
    Arg.(value & opt (some int) None & info [ "dense-threshold" ] ~docv:"N"
           ~doc:"Largest n solved by the dense eigensolver.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist computed spectra to a disk cache in $(docv) (also \
                 read from it).  Defaults to $(b,GRAPHIO_CACHE_DIR) when set; \
                 caching is off otherwise.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Evaluate many spectral bounds concurrently (JSON lines on stdout)")
    Term.(
      ret
        (const batch $ path $ njobs $ h $ dense_threshold $ cache_dir
        $ portfolio_arg $ filter_degree_arg $ no_warm_start_arg
        $ no_closed_form_arg $ faults_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

(* Portfolio survey over a jobs file: every job runs the full member set
   (a method= key in the file is ignored — report always compares), the
   table shows each member's bound per job, and the note tallies how
   often each member won. *)
let report path njobs h dense_threshold cache_dir portfolio_str filter_degree
    no_warm_start no_closed_form faults obs =
  handle obs @@ fun () ->
  apply_faults faults;
  let portfolio = parse_portfolio portfolio_str in
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let entries =
    List.mapi (fun i line -> parse_job_line ~path ~lineno:(i + 1) line) lines
    |> List.filter_map Fun.id
    |> Array.of_list
  in
  if Array.length entries = 0 then
    raise (Invalid_argument (Printf.sprintf "%s: no jobs" path));
  let specs = Array.map fst entries in
  let jobs =
    Array.map
      (fun (_, j) ->
        Solver.job ~method_:Solver.Portfolio ?p:j.Solver.p j.Solver.dag
          ~m:j.Solver.m)
      entries
  in
  let njobs = if njobs = 0 then Graphio_par.Pool.default_size () else njobs in
  if njobs < 1 then raise (Invalid_argument "-j: need at least 1");
  let cache =
    Option.map (fun dir -> Graphio_cache.Spectrum.create ~dir ()) cache_dir
  in
  let run pool =
    Solver.bound_batch ?cache ?pool ?portfolio ~h ?dense_threshold
      ~filter_degree ~warm_start:(not no_warm_start)
      ~closed_form:(not no_closed_form) jobs
  in
  let results =
    if njobs = 1 then run None
    else
      Graphio_par.Pool.with_pool ~size:njobs (fun pool -> run (Some pool))
  in
  let members = results.(0).Solver.outcome.Solver.methods in
  let columns =
    [ "job"; "m" ]
    @ Array.to_list
        (Array.map (fun mv -> method_name mv.Solver.mv_method) members)
    @ [ "winner" ]
  in
  let table = Graphio_core.Report.create ~title:"bound portfolio" ~columns in
  let tally = Hashtbl.create 8 in
  Array.iteri
    (fun i r ->
      let o = r.Solver.outcome in
      let winner =
        match o.Solver.winner with
        | Some w -> w
        | None -> o.Solver.method_
      in
      Hashtbl.replace tally winner
        (1 + Option.value (Hashtbl.find_opt tally winner) ~default:0);
      Graphio_core.Report.add_row table
        ([ specs.(i); string_of_int r.Solver.job.Solver.m ]
        @ Array.to_list
            (Array.map
               (fun mv -> Graphio_core.Report.cell_float mv.Solver.mv_bound)
               o.Solver.methods)
        @ [ method_name winner ]))
    results;
  Graphio_core.Report.note table
    ("winners: "
    ^ String.concat ", "
        (List.filter_map
           (fun m ->
             Option.map
               (fun c -> Printf.sprintf "%s x%d" (method_name m) c)
               (Hashtbl.find_opt tally m))
           Graphio_core.Method.concrete));
  Graphio_core.Report.print table

let report_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOBS"
           ~doc:"Jobs file, as for $(b,graphio batch); every job runs the \
                 portfolio regardless of its method= key.")
  in
  let njobs =
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domain-pool size (1 = sequential).  Defaults to \
                 $(b,GRAPHIO_POOL) or the core count.")
  in
  let h =
    Arg.(value & opt int 100 & info [ "eigenvalues" ] ~docv:"H"
           ~doc:"Number of smallest eigenvalues per spectrum.")
  in
  let dense_threshold =
    Arg.(value & opt (some int) None & info [ "dense-threshold" ] ~docv:"N"
           ~doc:"Largest n solved by the dense eigensolver.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist computed spectra to a disk cache in $(docv).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run the full bound portfolio over a jobs file and tabulate \
             per-method bounds and winners")
    Term.(
      ret
        (const report $ path $ njobs $ h $ dense_threshold $ cache_dir
        $ portfolio_arg $ filter_degree_arg $ no_warm_start_arg
        $ no_closed_form_arg $ faults_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let transport_of_args ~socket ~tcp =
  match tcp with
  | None -> Graphio_server.Server.Unix_socket socket
  | Some hostport -> (
      match String.rindex_opt hostport ':' with
      | None ->
          raise
            (Invalid_argument
               (Printf.sprintf "--tcp %S: expected HOST:PORT" hostport))
      | Some i -> (
          let host = String.sub hostport 0 i in
          let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 -> Graphio_server.Server.Tcp (host, p)
          | _ ->
              raise
                (Invalid_argument
                   (Printf.sprintf "--tcp %S: %S is not a port" hostport port))))

let socket_arg =
  Arg.(value & opt string "graphio.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path of the server.")

let tcp_arg =
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Use TCP instead of the Unix socket.")

let serve socket tcp njobs h dense_threshold timeout cache_dir cache_cap
    portfolio_str filter_degree no_warm_start no_closed_form faults obs =
  handle obs @@ fun () ->
  apply_faults faults;
  let portfolio = parse_portfolio portfolio_str in
  let transport = transport_of_args ~socket ~tcp in
  let cache =
    match cache_dir with
    | Some dir -> Graphio_cache.Spectrum.create ?capacity:cache_cap ~dir ()
    | None -> (
        match Graphio_cache.Spectrum.ambient () with
        | Some c -> c
        | None -> Graphio_cache.Spectrum.create ?capacity:cache_cap ())
  in
  let njobs = if njobs = 0 then Graphio_par.Pool.default_size () else njobs in
  if njobs < 1 then raise (Invalid_argument "-j: need at least 1");
  let cfg =
    {
      Graphio_server.Server.transport;
      pool_size = njobs;
      cache;
      timeout_s = timeout;
      h;
      dense_threshold;
      closed_form = not no_closed_form;
      warm_start = not no_warm_start;
      filter_degree;
      portfolio;
    }
  in
  let ready () =
    Printf.eprintf "graphio: listening on %s\n%!"
      (match transport with
      | Graphio_server.Server.Unix_socket p -> p
      | Graphio_server.Server.Tcp (host, port) -> Printf.sprintf "%s:%d" host port)
  in
  Graphio_server.Server.run ~ready cfg

let serve_cmd =
  let njobs =
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domain-pool size for concurrent requests (1 = sequential). \
                 Defaults to $(b,GRAPHIO_POOL) or the core count.")
  in
  let h =
    Arg.(value & opt int 100 & info [ "eigenvalues" ] ~docv:"H"
           ~doc:"Default number of smallest eigenvalues per spectrum \
                 (requests may override with \"h\").")
  in
  let dense_threshold =
    Arg.(value & opt (some int) None & info [ "dense-threshold" ] ~docv:"N"
           ~doc:"Largest n solved by the dense eigensolver.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Default per-request deadline; overrun requests get a \
                 structured timeout reply.  Requests may override with \
                 \"timeout_s\".")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Back the in-memory spectrum cache with a disk tier in \
                 $(docv) (shared with $(b,graphio batch --cache-dir)).  \
                 Defaults to $(b,GRAPHIO_CACHE_DIR) when set; memory-only \
                 otherwise.")
  in
  let cache_cap =
    Arg.(value & opt (some int) None & info [ "cache-entries" ] ~docv:"N"
           ~doc:"In-memory cache entry bound (LRU eviction beyond it).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve spectral bounds over a socket (newline-delimited JSON)")
    Term.(
      ret
        (const serve $ socket_arg $ tcp_arg $ njobs $ h $ dense_threshold
        $ timeout $ cache_dir $ cache_cap $ portfolio_arg $ filter_degree_arg
        $ no_warm_start_arg $ no_closed_form_arg $ faults_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

let client socket tcp obs =
  handle obs @@ fun () ->
  let transport = transport_of_args ~socket ~tcp in
  let c =
    try Graphio_server.Client.connect transport
    with Unix.Unix_error (e, _, _) ->
      raise
        (Invalid_argument
           (Printf.sprintf "cannot connect to the server: %s"
              (Unix.error_message e)))
  in
  Fun.protect
    ~finally:(fun () -> Graphio_server.Client.close c)
    (fun () ->
      try
        while true do
          let line = input_line stdin in
          if String.trim line <> "" then begin
            print_endline (Graphio_server.Client.rpc c line);
            flush stdout
          end
        done
      with End_of_file -> ())

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send request lines from stdin to a running graphio serve; print \
             one reply line each")
    Term.(ret (const client $ socket_arg $ tcp_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* A refreshing dashboard over the server's {"op":"metrics"} exposition:
   each poll fetches the full snapshot, computes latency quantiles
   client-side (Metrics.of_json round-trips the histogram), and derives
   the request rate from the counter delta between polls. *)

let snap_counter snap name =
  match Graphio_obs.Metrics.find snap name with
  | Some (Graphio_obs.Metrics.Counter n) -> n
  | _ -> 0

let snap_gauge snap name =
  match Graphio_obs.Metrics.find snap name with
  | Some (Graphio_obs.Metrics.Gauge g) -> g
  | _ -> 0.0

let render_top ~rate snap =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let ms = function Some s -> Printf.sprintf "%.2fms" (s *. 1e3) | None -> "-" in
  let requests = snap_counter snap "server.requests" in
  let errors = snap_counter snap "server.errors" in
  let lat name =
    Graphio_obs.Metrics.find snap name
    |> Option.map (fun v -> Graphio_obs.Metrics.value_quantile v)
  in
  line "graphio top";
  line "";
  line "requests   total %-8d errors %-6d rate %.1f/s" requests errors rate;
  (match lat "server.request_seconds" with
  | Some q ->
      line "latency    p50 %-10s p95 %-10s p99 %s" (ms (q 0.5)) (ms (q 0.95))
        (ms (q 0.99))
  | None -> line "latency    (no requests yet)");
  let hits = snap_counter snap "cache.hits" and misses = snap_counter snap "cache.misses" in
  let total = hits + misses in
  line "cache      hits %-9d misses %-6d hit-rate %s" hits misses
    (if total = 0 then "-" else Printf.sprintf "%.0f%%" (100.0 *. float_of_int hits /. float_of_int total));
  line "solver     closed-form %-4d warm-starts %-4d filter-degree %s"
    (snap_counter snap "core.solver.closed_form_hits")
    (snap_counter snap "core.solver.warm_start_hits")
    (match snap_gauge snap "la.eigen.filter_degree" with
    | 0.0 -> "-"
    | d -> Printf.sprintf "%.0f" d);
  line "pool       size %-9.0f queue %-7.0f steals %d"
    (snap_gauge snap "par.pool.size")
    (snap_gauge snap "par.pool.queue_depth")
    (snap_counter snap "par.pool.steals");
  line "gc         heap %-9.0f minor %-7.0f major %.0f"
    (snap_gauge snap "runtime.gc.heap_words")
    (snap_gauge snap "runtime.gc.minor_collections")
    (snap_gauge snap "runtime.gc.major_collections");
  Buffer.contents b

let top socket tcp interval iterations no_clear obs =
  handle obs @@ fun () ->
  if interval <= 0.0 then raise (Invalid_argument "--interval: must be positive");
  if iterations < 0 then raise (Invalid_argument "--iterations: must be >= 0");
  let transport = transport_of_args ~socket ~tcp in
  let c =
    try Graphio_server.Client.connect transport
    with Unix.Unix_error (e, _, _) ->
      raise
        (Invalid_argument
           (Printf.sprintf "cannot connect to the server: %s"
              (Unix.error_message e)))
  in
  Fun.protect
    ~finally:(fun () -> Graphio_server.Client.close c)
    (fun () ->
      let prev = ref None in
      let i = ref 0 in
      let continue () = iterations = 0 || !i < iterations in
      while continue () do
        incr i;
        let reply = Graphio_server.Client.rpc c {|{"op":"metrics"}|} in
        let json = Graphio_obs.Jsonx.of_string reply in
        (match Graphio_obs.Jsonx.member "ok" json with
        | Some (Graphio_obs.Jsonx.Bool true) -> ()
        | _ -> raise (Failure ("unexpected metrics reply: " ^ reply)));
        let snap =
          match Graphio_obs.Jsonx.member "metrics" json with
          | Some m -> Graphio_obs.Metrics.of_json m
          | None -> raise (Failure "metrics reply carries no snapshot")
        in
        let now = Graphio_obs.Clock.now_ns () in
        let requests = snap_counter snap "server.requests" in
        let rate =
          match !prev with
          | Some (r0, t0) when now > t0 ->
              float_of_int (requests - r0) /. (float_of_int (now - t0) /. 1e9)
          | _ -> 0.0
        in
        prev := Some (requests, now);
        if not no_clear then print_string "\027[2J\027[H";
        print_string (render_top ~rate snap);
        flush stdout;
        if continue () then Unix.sleepf interval
      done)

let top_cmd =
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Seconds between polls.")
  in
  let iterations =
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N"
           ~doc:"Stop after $(docv) refreshes (0 = run until interrupted).")
  in
  let no_clear =
    Arg.(value & flag & info [ "no-clear" ]
           ~doc:"Append refreshes instead of clearing the screen (pipelines, \
                 tests).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Poll a running graphio serve and render a refreshing \
             latency/cache/pool dashboard")
    Term.(
      ret
        (const top $ socket_arg $ tcp_arg $ interval $ iterations $ no_clear
        $ obs_term))

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "graphio" ~version:"1.0.0"
      ~doc:"Spectral lower bounds on the I/O complexity of computation graphs"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; convert_cmd; bound_cmd; baseline_cmd; simulate_cmd;
            spectrum_cmd;
            export_cmd; analyze_cmd; sweep_cmd; batch_cmd; report_cmd;
            serve_cmd; client_cmd;
            top_cmd;
          ]))
